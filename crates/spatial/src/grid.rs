//! The flat uniform bucket grid.

use ustencil_geometry::Point2;

/// Boundary handling of grid queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Boundary {
    /// Cell indices wrap modulo the grid size (the paper's periodic
    /// setting).
    Periodic,
    /// Query ranges are clamped to the domain (one-sided boundary setting).
    Clamped,
}

/// A uniform hash grid over the unit square storing `u32` item ids per cell
/// in a CSR (offsets + items) layout — one flat allocation, cache-friendly
/// iteration, no per-cell `Vec` overhead.
#[derive(Debug, Clone)]
pub struct UniformGrid {
    n: usize,
    cell: f64,
    boundary: Boundary,
    offsets: Vec<u32>,
    items: Vec<u32>,
}

impl UniformGrid {
    /// Builds a grid over `[0,1]^2` from item positions.
    ///
    /// `min_cell` is the *minimum* cell size; the actual size is `1/n` for
    /// the largest integer `n` with `1/n >= min_cell` (so the enclosure
    /// guarantees that motivate `min_cell` are preserved — see Section 3.2's
    /// minimum-cell-size rule).
    ///
    /// # Panics
    /// Panics when `min_cell` is not positive or positions are outside
    /// `[0, 1]^2` by more than a rounding margin.
    pub fn from_positions(positions: &[Point2], min_cell: f64, boundary: Boundary) -> Self {
        assert!(min_cell > 0.0, "cell size must be positive");
        let n = ((1.0 / min_cell).floor() as usize).max(1);
        let cell = 1.0 / n as f64;

        // Counting pass.
        let mut counts = vec![0u32; n * n];
        let cell_index = |p: Point2| -> usize {
            debug_assert!(
                (-1e-9..=1.0 + 1e-9).contains(&p.x) && (-1e-9..=1.0 + 1e-9).contains(&p.y),
                "position {p:?} outside the unit square"
            );
            let ix = ((p.x / cell) as usize).min(n - 1);
            let iy = ((p.y / cell) as usize).min(n - 1);
            iy * n + ix
        };
        for &p in positions {
            counts[cell_index(p)] += 1;
        }
        // Prefix sum into offsets.
        let mut offsets = vec![0u32; n * n + 1];
        for i in 0..n * n {
            offsets[i + 1] = offsets[i] + counts[i];
        }
        // Fill pass.
        let mut cursor = offsets[..n * n].to_vec();
        let mut items = vec![0u32; positions.len()];
        for (id, &p) in positions.iter().enumerate() {
            let c = cell_index(p);
            items[cursor[c] as usize] = id as u32;
            cursor[c] += 1;
        }

        Self {
            n,
            cell,
            boundary,
            offsets,
            items,
        }
    }

    /// Cells per side.
    #[inline]
    pub fn cells_per_side(&self) -> usize {
        self.n
    }

    /// Actual cell width (`>= min_cell` requested at construction).
    #[inline]
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    /// The boundary mode.
    #[inline]
    pub fn boundary(&self) -> Boundary {
        self.boundary
    }

    /// Total stored items.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the grid stores nothing.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Items of one cell by `(ix, iy)` index (must be in range).
    #[inline]
    pub fn cell_items(&self, ix: usize, iy: usize) -> &[u32] {
        let c = iy * self.n + ix;
        &self.items[self.offsets[c] as usize..self.offsets[c + 1] as usize]
    }

    /// The inclusive wrapped/clamped cell span covering `[lo, hi]` along one
    /// axis, returned as `(first_index, count)`; `count` never exceeds the
    /// grid size, so no cell is visited twice even when the query is wider
    /// than the domain.
    pub fn axis_span(&self, lo: f64, hi: f64) -> (usize, usize) {
        debug_assert!(hi >= lo);
        let nf = self.n as f64;
        match self.boundary {
            Boundary::Periodic => {
                let i_lo = (lo / self.cell).floor() as i64;
                let i_hi = (hi / self.cell).floor() as i64;
                let count = ((i_hi - i_lo + 1).max(1) as usize).min(self.n);
                let first = i_lo.rem_euclid(self.n as i64) as usize;
                (first, count)
            }
            Boundary::Clamped => {
                let i_lo = (lo / self.cell).floor().clamp(0.0, nf - 1.0) as usize;
                let i_hi = (hi / self.cell).floor().clamp(0.0, nf - 1.0) as usize;
                (i_lo, i_hi - i_lo + 1)
            }
        }
    }

    /// Visits every item in cells covering the rectangle `[lo, hi]`,
    /// passing the item id. Cells are visited once; items in a cell are
    /// visited in insertion order.
    pub fn for_each_in_rect<F: FnMut(u32)>(&self, lo: Point2, hi: Point2, mut f: F) {
        let (x0, xc) = self.axis_span(lo.x, hi.x);
        let (y0, yc) = self.axis_span(lo.y, hi.y);
        for dy in 0..yc {
            let iy = (y0 + dy) % self.n;
            for dx in 0..xc {
                let ix = (x0 + dx) % self.n;
                for &id in self.cell_items(ix, iy) {
                    f(id);
                }
            }
        }
    }

    /// Number of cells a rect query would touch (used by the cost model).
    pub fn cells_in_rect(&self, lo: Point2, hi: Point2) -> usize {
        let (_, xc) = self.axis_span(lo.x, hi.x);
        let (_, yc) = self.axis_span(lo.y, hi.y);
        xc * yc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_points() -> Vec<Point2> {
        let mut pts = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                pts.push(Point2::new(
                    (i as f64 + 0.5) / 10.0,
                    (j as f64 + 0.5) / 10.0,
                ));
            }
        }
        pts
    }

    #[test]
    fn grid_size_respects_minimum_cell() {
        let g = UniformGrid::from_positions(&sample_points(), 0.3, Boundary::Periodic);
        assert_eq!(g.cells_per_side(), 3); // 1/3 >= 0.3
        assert!(g.cell_size() >= 0.3);
        let g = UniformGrid::from_positions(&sample_points(), 0.05, Boundary::Periodic);
        assert_eq!(g.cells_per_side(), 20);
    }

    #[test]
    fn all_items_stored_exactly_once() {
        let pts = sample_points();
        let g = UniformGrid::from_positions(&pts, 0.13, Boundary::Periodic);
        assert_eq!(g.len(), pts.len());
        let mut seen = vec![false; pts.len()];
        for iy in 0..g.cells_per_side() {
            for ix in 0..g.cells_per_side() {
                for &id in g.cell_items(ix, iy) {
                    assert!(!seen[id as usize]);
                    seen[id as usize] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn rect_query_finds_exactly_covering_cells_items() {
        let pts = sample_points();
        let g = UniformGrid::from_positions(&pts, 0.1, Boundary::Periodic);
        // Query around one point: must find it.
        let target = Point2::new(0.55, 0.35);
        let mut found = Vec::new();
        g.for_each_in_rect(
            Point2::new(target.x - 0.01, target.y - 0.01),
            Point2::new(target.x + 0.01, target.y + 0.01),
            |id| found.push(id),
        );
        assert!(found
            .iter()
            .any(|&id| pts[id as usize].distance(target) < 0.1));
    }

    #[test]
    fn query_is_superset_of_brute_force() {
        // Every point inside the query rect must be visited.
        let pts = sample_points();
        let g = UniformGrid::from_positions(&pts, 0.07, Boundary::Periodic);
        let lo = Point2::new(0.22, 0.41);
        let hi = Point2::new(0.63, 0.77);
        let mut visited = vec![false; pts.len()];
        g.for_each_in_rect(lo, hi, |id| visited[id as usize] = true);
        for (i, p) in pts.iter().enumerate() {
            if p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y {
                assert!(visited[i], "missed point {p:?}");
            }
        }
    }

    #[test]
    fn periodic_wrap_visits_each_cell_once() {
        let pts = sample_points();
        let g = UniformGrid::from_positions(&pts, 0.1, Boundary::Periodic);
        // Query wider than the domain must visit every item exactly once.
        let mut count = vec![0u32; pts.len()];
        g.for_each_in_rect(Point2::new(-2.0, -2.0), Point2::new(3.0, 3.0), |id| {
            count[id as usize] += 1
        });
        assert!(count.iter().all(|&c| c == 1), "duplicated visits");
    }

    #[test]
    fn periodic_query_crossing_boundary_finds_wrapped_items() {
        let pts = vec![Point2::new(0.02, 0.5), Point2::new(0.98, 0.5)];
        let g = UniformGrid::from_positions(&pts, 0.1, Boundary::Periodic);
        // Query just left of 0 wraps to the right edge.
        let mut found = Vec::new();
        g.for_each_in_rect(Point2::new(-0.06, 0.45), Point2::new(0.04, 0.55), |id| {
            found.push(id)
        });
        assert!(found.contains(&0));
        assert!(found.contains(&1), "wrapped item not found: {found:?}");
    }

    #[test]
    fn clamped_query_does_not_wrap() {
        let pts = vec![Point2::new(0.02, 0.5), Point2::new(0.98, 0.5)];
        let g = UniformGrid::from_positions(&pts, 0.1, Boundary::Clamped);
        let mut found = Vec::new();
        g.for_each_in_rect(Point2::new(-0.06, 0.45), Point2::new(0.04, 0.55), |id| {
            found.push(id)
        });
        assert!(found.contains(&0));
        assert!(!found.contains(&1));
    }

    #[test]
    fn cells_in_rect_counts() {
        let g = UniformGrid::from_positions(&sample_points(), 0.1, Boundary::Periodic);
        assert_eq!(
            g.cells_in_rect(Point2::new(0.05, 0.05), Point2::new(0.06, 0.06)),
            1
        );
        assert_eq!(
            g.cells_in_rect(Point2::new(0.05, 0.05), Point2::new(0.15, 0.06)),
            2
        );
        // Never more than the whole grid.
        assert_eq!(
            g.cells_in_rect(Point2::new(-5.0, -5.0), Point2::new(5.0, 5.0)),
            100
        );
    }

    #[test]
    fn boundary_edge_positions_are_accepted() {
        let pts = vec![Point2::new(0.0, 0.0), Point2::new(1.0, 1.0)];
        let g = UniformGrid::from_positions(&pts, 0.25, Boundary::Periodic);
        assert_eq!(g.len(), 2);
    }
}
