//! A static 2D k-d tree — the ablation alternative to the uniform hash
//! grid.
//!
//! Section 3 of the paper surveys spatial structures (k-d trees, uniform
//! hash grids, quad/oct trees, BVHs) and argues that, with square stencils
//! and roughly uniformly distributed points, the uniform hash grid is the
//! right choice. This module provides the k-d tree so the claim is
//! *measured* rather than assumed (see the `micro_kernels` bench group).

use ustencil_geometry::{Aabb, Point2};

/// A balanced, implicitly stored 2D k-d tree over a fixed point set.
///
/// Built once by recursive median splits (alternating axes); nodes are
/// stored in a flat array in subtree order, so a range query touches
/// contiguous memory for each visited subtree.
#[derive(Debug, Clone)]
pub struct KdTree {
    /// Point ids in tree order.
    ids: Vec<u32>,
    /// Positions in tree order (parallel to `ids`).
    pts: Vec<Point2>,
}

impl KdTree {
    /// Builds the tree over the given points.
    pub fn build(points: &[Point2]) -> Self {
        let mut ids: Vec<u32> = (0..points.len() as u32).collect();
        let mut scratch: Vec<(u32, Point2)> =
            ids.iter().map(|&i| (i, points[i as usize])).collect();
        build_rec(&mut scratch, 0);
        let pts = scratch.iter().map(|&(_, p)| p).collect();
        ids.clear();
        ids.extend(scratch.iter().map(|&(i, _)| i));
        Self { ids, pts }
    }

    /// Number of stored points.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the tree is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Visits the id of every point inside the closed rectangle.
    pub fn query_rect<F: FnMut(u32)>(&self, rect: &Aabb, mut f: F) {
        if !self.ids.is_empty() {
            self.query_rec(0, self.ids.len(), 0, rect, &mut f);
        }
    }

    fn query_rec<F: FnMut(u32)>(&self, lo: usize, hi: usize, axis: usize, rect: &Aabb, f: &mut F) {
        if lo >= hi {
            return;
        }
        let mid = lo + (hi - lo) / 2;
        let p = self.pts[mid];
        if rect.contains(p) {
            f(self.ids[mid]);
        }
        let coord = if axis == 0 { p.x } else { p.y };
        let (rmin, rmax) = if axis == 0 {
            (rect.min.x, rect.max.x)
        } else {
            (rect.min.y, rect.max.y)
        };
        let next = axis ^ 1;
        if rmin <= coord {
            self.query_rec(lo, mid, next, rect, f);
        }
        if rmax >= coord {
            self.query_rec(mid + 1, hi, next, rect, f);
        }
    }
}

fn build_rec(slice: &mut [(u32, Point2)], axis: usize) {
    if slice.len() <= 1 {
        return;
    }
    let mid = slice.len() / 2;
    if axis == 0 {
        slice.select_nth_unstable_by(mid, |a, b| a.1.x.total_cmp(&b.1.x));
    } else {
        slice.select_nth_unstable_by(mid, |a, b| a.1.y.total_cmp(&b.1.y));
    }
    let (left, rest) = slice.split_at_mut(mid);
    let (_, right) = rest.split_at_mut(1);
    build_rec(left, axis ^ 1);
    build_rec(right, axis ^ 1);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lattice(n: usize) -> Vec<Point2> {
        let mut pts = Vec::new();
        for j in 0..n {
            for i in 0..n {
                pts.push(Point2::new(
                    (i as f64 + 0.5) / n as f64,
                    (j as f64 + 0.5) / n as f64,
                ));
            }
        }
        pts
    }

    fn brute(pts: &[Point2], rect: &Aabb) -> Vec<u32> {
        pts.iter()
            .enumerate()
            .filter(|(_, p)| rect.contains(**p))
            .map(|(i, _)| i as u32)
            .collect()
    }

    #[test]
    fn query_matches_brute_force() {
        let pts = lattice(17);
        let tree = KdTree::build(&pts);
        assert_eq!(tree.len(), pts.len());
        for rect in [
            Aabb::new(Point2::new(0.2, 0.3), Point2::new(0.6, 0.8)),
            Aabb::new(Point2::new(-1.0, -1.0), Point2::new(2.0, 2.0)),
            Aabb::new(Point2::new(0.5, 0.5), Point2::new(0.5, 0.5)),
            Aabb::new(Point2::new(0.9, 0.0), Point2::new(1.0, 0.05)),
        ] {
            let mut got = Vec::new();
            tree.query_rect(&rect, |id| got.push(id));
            got.sort_unstable();
            let mut want = brute(&pts, &rect);
            want.sort_unstable();
            assert_eq!(got, want, "rect {rect:?}");
        }
    }

    #[test]
    fn empty_and_singleton() {
        let tree = KdTree::build(&[]);
        assert!(tree.is_empty());
        let mut hits = 0;
        tree.query_rect(
            &Aabb::new(Point2::new(0.0, 0.0), Point2::new(1.0, 1.0)),
            |_| hits += 1,
        );
        assert_eq!(hits, 0);

        let tree = KdTree::build(&[Point2::new(0.5, 0.5)]);
        tree.query_rect(
            &Aabb::new(Point2::new(0.0, 0.0), Point2::new(1.0, 1.0)),
            |_| hits += 1,
        );
        assert_eq!(hits, 1);
    }

    #[test]
    fn duplicate_coordinates_handled() {
        let pts = vec![Point2::new(0.5, 0.5); 9];
        let tree = KdTree::build(&pts);
        let mut got = Vec::new();
        tree.query_rect(
            &Aabb::new(Point2::new(0.4, 0.4), Point2::new(0.6, 0.6)),
            |id| got.push(id),
        );
        assert_eq!(got.len(), 9);
    }

    #[test]
    fn disjoint_query_finds_nothing() {
        let pts = lattice(8);
        let tree = KdTree::build(&pts);
        let mut hits = 0;
        tree.query_rect(
            &Aabb::new(Point2::new(2.0, 2.0), Point2::new(3.0, 3.0)),
            |_| hits += 1,
        );
        assert_eq!(hits, 0);
    }
}
