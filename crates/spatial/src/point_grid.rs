//! The per-element hash grid over evaluation points.

use crate::grid::{Boundary, UniformGrid};
use ustencil_geometry::{Aabb, Point2};

/// Uniform hash grid storing evaluation points, used by the per-element
/// evaluation scheme.
///
/// Points are dimensionless, so there is no enclosure constraint and no halo
/// region: cells can be smaller than the longest edge (the paper uses
/// `c_e = s/2`), which tightens the per-element search window to `s + w`
/// against the per-point window of `2s + w` (Figure 6) — the source of the
/// intersection-test reduction in Table 1.
#[derive(Debug, Clone)]
pub struct PointGrid {
    grid: UniformGrid,
}

impl PointGrid {
    /// Builds the grid with explicit minimum cell size (the paper's default
    /// is half the longest mesh edge; see [`PointGrid::build_half_edge`]).
    pub fn build(points: &[Point2], min_cell: f64, boundary: Boundary) -> Self {
        // Positions may sit exactly on the domain boundary.
        let clamped: Vec<Point2> = points
            .iter()
            .map(|p| Point2::new(p.x.clamp(0.0, 1.0), p.y.clamp(0.0, 1.0)))
            .collect();
        Self {
            grid: UniformGrid::from_positions(&clamped, min_cell, boundary),
        }
    }

    /// Builds with the paper's cell size `c_e = s/2`.
    pub fn build_half_edge(points: &[Point2], max_edge: f64, boundary: Boundary) -> Self {
        Self::build(points, max_edge / 2.0, boundary)
    }

    /// The underlying grid.
    #[inline]
    pub fn grid(&self) -> &UniformGrid {
        &self.grid
    }

    /// Visits every point whose stencil of half-width `half_width` can
    /// intersect the element bounding box `bbox` (Eq. 3, per-element
    /// bounds): exactly the points inside the box inflated by `half_width`,
    /// rounded out to cell boundaries.
    pub fn for_each_candidate<F: FnMut(u32)>(&self, bbox: &Aabb, half_width: f64, f: F) {
        self.grid.for_each_in_rect(
            Point2::new(bbox.min.x - half_width, bbox.min.y - half_width),
            Point2::new(bbox.max.x + half_width, bbox.max.y + half_width),
            f,
        );
    }

    /// Number of grid cells such a query touches (for the cost model).
    pub fn candidate_cells(&self, bbox: &Aabb, half_width: f64) -> usize {
        self.grid.cells_in_rect(
            Point2::new(bbox.min.x - half_width, bbox.min.y - half_width),
            Point2::new(bbox.max.x + half_width, bbox.max.y + half_width),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ustencil_mesh::PERIODIC_SHIFTS;

    fn lattice(n: usize) -> Vec<Point2> {
        let mut pts = Vec::new();
        for j in 0..n {
            for i in 0..n {
                pts.push(Point2::new(
                    (i as f64 + 0.5) / n as f64,
                    (j as f64 + 0.5) / n as f64,
                ));
            }
        }
        pts
    }

    #[test]
    fn finds_all_points_whose_stencil_reaches_the_box() {
        let pts = lattice(20);
        let grid = PointGrid::build(&pts, 0.05, Boundary::Periodic);
        let bbox = Aabb::new(Point2::new(0.4, 0.4), Point2::new(0.45, 0.5));
        let hw = 0.12;
        let mut found = vec![false; pts.len()];
        grid.for_each_candidate(&bbox, hw, |id| found[id as usize] = true);
        for (i, p) in pts.iter().enumerate() {
            // Point's stencil reaches the box iff the point is within hw of
            // the box (in any periodic image).
            let reaches = PERIODIC_SHIFTS.iter().any(|&s| {
                let q = *p + s;
                q.x >= bbox.min.x - hw
                    && q.x <= bbox.max.x + hw
                    && q.y >= bbox.min.y - hw
                    && q.y <= bbox.max.y + hw
            });
            if reaches {
                assert!(found[i], "missed point {p:?}");
            }
        }
    }

    #[test]
    fn periodic_wrap_near_corner() {
        let pts = lattice(10);
        let grid = PointGrid::build(&pts, 0.1, Boundary::Periodic);
        // Element box at the top-right corner; nearby points wrap from the
        // bottom-left.
        let bbox = Aabb::new(Point2::new(0.97, 0.97), Point2::new(1.0, 1.0));
        let mut found = vec![false; pts.len()];
        grid.for_each_candidate(&bbox, 0.1, |id| found[id as usize] = true);
        // Point (0.05, 0.05) is within 0.1 of the box through the corner
        // wrap.
        let idx = pts
            .iter()
            .position(|p| (p.x - 0.05).abs() < 1e-12 && (p.y - 0.05).abs() < 1e-12)
            .unwrap();
        assert!(found[idx]);
    }

    #[test]
    fn no_duplicates_even_for_huge_queries() {
        let pts = lattice(8);
        let grid = PointGrid::build(&pts, 0.1, Boundary::Periodic);
        let bbox = Aabb::new(Point2::new(0.0, 0.0), Point2::new(1.0, 1.0));
        let mut counts = vec![0u32; pts.len()];
        grid.for_each_candidate(&bbox, 0.5, |id| counts[id as usize] += 1);
        assert!(counts.iter().all(|&c| c == 1));
    }

    #[test]
    fn half_edge_build_uses_smaller_cells() {
        let pts = lattice(16);
        let s = 0.2;
        let grid = PointGrid::build_half_edge(&pts, s, Boundary::Periodic);
        assert!(grid.grid().cell_size() < s);
        assert!(grid.grid().cell_size() >= s / 2.0);
    }

    #[test]
    fn boundary_points_accepted() {
        let pts = vec![Point2::new(0.0, 1.0), Point2::new(1.0, 0.0)];
        let grid = PointGrid::build(&pts, 0.25, Boundary::Clamped);
        assert_eq!(grid.grid().len(), 2);
    }
}
