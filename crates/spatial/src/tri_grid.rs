//! The per-point hash grid over triangle centroids.

use crate::grid::{Boundary, UniformGrid};
use ustencil_geometry::Point2;
use ustencil_mesh::TriMesh;

/// Uniform hash grid storing mesh triangles by centroid, used by the
/// per-point evaluation scheme.
///
/// The cell size is at least `cell_factor * s` where `s` is the longest mesh
/// edge (the paper uses `c_p = s`). Because a triangle's every point lies
/// within `s` of its centroid, a query inflated by one *halo ring* of cells
/// is guaranteed to visit every triangle that can intersect the query
/// rectangle — the enclosure property of Section 3.2.
#[derive(Debug, Clone)]
pub struct TriangleGrid {
    grid: UniformGrid,
    max_edge: f64,
}

impl TriangleGrid {
    /// Builds the grid from mesh centroids with the paper's default cell
    /// factor `c_p = s`.
    pub fn build(mesh: &TriMesh, boundary: Boundary) -> Self {
        Self::build_with_factor(mesh, 1.0, boundary)
    }

    /// Builds with cell size `factor * s` (`factor >= 1` preserves the
    /// enclosure guarantee; smaller factors would need a deeper halo).
    ///
    /// # Panics
    /// Panics when `factor < 1`.
    pub fn build_with_factor(mesh: &TriMesh, factor: f64, boundary: Boundary) -> Self {
        assert!(factor >= 1.0, "cell factor below 1 breaks enclosure");
        let s = mesh.max_edge_length();
        let centroids: Vec<Point2> = (0..mesh.n_triangles())
            .map(|i| {
                let c = mesh.centroid(i);
                // Centroids of triangles covering the unit square are
                // interior, but guard against rounding at the border.
                Point2::new(c.x.clamp(0.0, 1.0), c.y.clamp(0.0, 1.0))
            })
            .collect();
        let grid = UniformGrid::from_positions(&centroids, factor * s, boundary);
        Self { grid, max_edge: s }
    }

    /// The underlying grid.
    #[inline]
    pub fn grid(&self) -> &UniformGrid {
        &self.grid
    }

    /// Longest mesh edge `s`.
    #[inline]
    pub fn max_edge(&self) -> f64 {
        self.max_edge
    }

    /// Visits every triangle that can intersect the square stencil support
    /// of half-width `half_width` centered at `center`, including the halo
    /// ring (Eq. 3, per-point bounds). Candidates are a superset of the true
    /// intersections; the caller performs the exact test.
    pub fn for_each_candidate<F: FnMut(u32)>(&self, center: Point2, half_width: f64, f: F) {
        let halo = self.grid.cell_size();
        let r = half_width + halo;
        self.grid.for_each_in_rect(
            Point2::new(center.x - r, center.y - r),
            Point2::new(center.x + r, center.y + r),
            f,
        );
    }

    /// Number of grid cells such a query touches (for the cost model).
    pub fn candidate_cells(&self, center: Point2, half_width: f64) -> usize {
        let halo = self.grid.cell_size();
        let r = half_width + halo;
        self.grid.cells_in_rect(
            Point2::new(center.x - r, center.y - r),
            Point2::new(center.x + r, center.y + r),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ustencil_geometry::Rect;
    use ustencil_mesh::{generate_mesh, MeshClass, PERIODIC_SHIFTS};

    /// Periodic-aware brute-force reference: ids of triangles with any
    /// image's bounding box intersecting the query rect.
    fn brute_force(mesh: &TriMesh, rect: &Rect) -> Vec<u32> {
        let mut out = Vec::new();
        for (i, tri) in mesh.triangles().enumerate() {
            for shift in PERIODIC_SHIFTS {
                let bb = tri.translate(shift).aabb();
                if rect.intersects_aabb(&bb) {
                    out.push(i as u32);
                    break;
                }
            }
        }
        out
    }

    #[test]
    fn candidates_cover_all_true_intersections() {
        let mesh = generate_mesh(MeshClass::LowVariance, 300, 17);
        let grid = TriangleGrid::build(&mesh, Boundary::Periodic);
        let hw = 2.5 * mesh.max_edge_length();
        for &(cx, cy) in &[(0.5, 0.5), (0.02, 0.02), (0.99, 0.4), (0.0, 1.0)] {
            let center = Point2::new(cx, cy);
            let mut candidates = Vec::new();
            grid.for_each_candidate(center, hw, |id| candidates.push(id));
            let rect = Rect::new(cx - hw, cy - hw, cx + hw, cy + hw);
            for id in brute_force(&mesh, &rect) {
                assert!(
                    candidates.contains(&id),
                    "center ({cx},{cy}): triangle {id} missed"
                );
            }
        }
    }

    #[test]
    fn high_variance_meshes_also_covered() {
        let mesh = generate_mesh(MeshClass::HighVariance, 300, 23);
        let grid = TriangleGrid::build(&mesh, Boundary::Periodic);
        let hw = 2.0 * mesh.max_edge_length();
        let center = Point2::new(0.1, 0.9);
        let mut candidates = Vec::new();
        grid.for_each_candidate(center, hw, |id| candidates.push(id));
        let rect = Rect::new(center.x - hw, center.y - hw, center.x + hw, center.y + hw);
        for id in brute_force(&mesh, &rect) {
            assert!(candidates.contains(&id), "triangle {id} missed");
        }
    }

    #[test]
    fn no_duplicate_candidates() {
        let mesh = generate_mesh(MeshClass::LowVariance, 200, 3);
        let grid = TriangleGrid::build(&mesh, Boundary::Periodic);
        let mut counts = vec![0u32; mesh.n_triangles()];
        // Stencil wider than the whole domain.
        grid.for_each_candidate(Point2::new(0.5, 0.5), 2.0, |id| counts[id as usize] += 1);
        assert!(counts.iter().all(|&c| c == 1));
    }

    #[test]
    fn cell_size_is_at_least_max_edge() {
        let mesh = generate_mesh(MeshClass::LowVariance, 500, 1);
        let grid = TriangleGrid::build(&mesh, Boundary::Periodic);
        assert!(grid.grid().cell_size() >= mesh.max_edge_length());
    }

    #[test]
    #[should_panic(expected = "enclosure")]
    fn sub_unit_factor_panics() {
        let mesh = generate_mesh(MeshClass::LowVariance, 100, 1);
        let _ = TriangleGrid::build_with_factor(&mesh, 0.5, Boundary::Periodic);
    }
}
