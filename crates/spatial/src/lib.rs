//! Uniform hash grids for spatial queries over the periodic unit square.
//!
//! Section 3.2 of the paper builds two uniform subdivisions of the domain:
//!
//! * the **per-point** path stores triangle *centroids* in a grid with cell
//!   size `c_p = s` (the longest mesh edge), which guarantees *enclosure* —
//!   no triangle extends farther than one cell from its centroid cell — at
//!   the cost of a one-cell *halo ring* around every stencil query;
//! * the **per-element** path stores *evaluation points* in a grid with cell
//!   size `c_e = s/2`; points are dimensionless, so no halo is needed and
//!   the cells bound the query region tightly.
//!
//! Both are instances of [`UniformGrid`], a flat CSR-layout bucket grid with
//! periodic or clamped boundary handling. [`TriangleGrid`] and [`PointGrid`]
//! wrap it with the Eq. (3) query-bound conventions.

#![deny(missing_docs)]

pub mod grid;
pub mod hilbert;
pub mod kdtree;
pub mod point_grid;
pub mod tri_grid;

pub use grid::{Boundary, UniformGrid};
pub use hilbert::{
    hilbert_order_elements, hilbert_order_points, hilbert_sort_elements, Permutation,
};
pub use kdtree::KdTree;
pub use point_grid::PointGrid;
pub use tri_grid::TriangleGrid;
