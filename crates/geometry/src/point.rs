//! Points and vectors in the plane.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A point in the plane, double precision.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point2 {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

/// A displacement vector in the plane, double precision.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// Horizontal component.
    pub x: f64,
    /// Vertical component.
    pub y: f64,
}

impl Point2 {
    /// Constructs a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point2 = Point2::new(0.0, 0.0);

    /// Vector from the origin to this point.
    #[inline]
    pub fn to_vec(self) -> Vec2 {
        Vec2::new(self.x, self.y)
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance(self, other: Point2) -> f64 {
        (self - other).norm()
    }

    /// Squared Euclidean distance to another point (avoids the square root).
    #[inline]
    pub fn distance_sq(self, other: Point2) -> f64 {
        (self - other).norm_sq()
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(self, other: Point2, t: f64) -> Point2 {
        Point2::new(
            self.x + t * (other.x - self.x),
            self.y + t * (other.y - self.y),
        )
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Point2) -> Point2 {
        Point2::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Point2) -> Point2 {
        Point2::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// True when both coordinates are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Vec2 {
    /// Constructs a vector from its components.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// The zero vector.
    pub const ZERO: Vec2 = Vec2::new(0.0, 0.0);

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2D cross product (the `z` component of the 3D cross product).
    ///
    /// Positive when `other` lies counter-clockwise of `self`.
    #[inline]
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// The vector rotated 90 degrees counter-clockwise.
    #[inline]
    pub fn perp(self) -> Vec2 {
        Vec2::new(-self.y, self.x)
    }

    /// Unit vector in the same direction, or `None` for (near-)zero vectors.
    #[inline]
    pub fn normalized(self) -> Option<Vec2> {
        let n = self.norm();
        if n > 0.0 && n.is_finite() {
            Some(self / n)
        } else {
            None
        }
    }
}

impl Add<Vec2> for Point2 {
    type Output = Point2;
    #[inline]
    fn add(self, rhs: Vec2) -> Point2 {
        Point2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign<Vec2> for Point2 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec2) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub<Vec2> for Point2 {
    type Output = Point2;
    #[inline]
    fn sub(self, rhs: Vec2) -> Point2 {
        Point2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign<Vec2> for Point2 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec2) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Sub for Point2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Point2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Mul<Vec2> for f64 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: Vec2) -> Vec2 {
        rhs * self
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn div(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x / rhs, self.y / rhs)
    }
}

/// Signed area of the triangle `(a, b, c)`; positive when counter-clockwise.
#[inline]
pub fn orient2d(a: Point2, b: Point2, c: Point2) -> f64 {
    (b - a).cross(c - a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_vector_arithmetic_round_trips() {
        let p = Point2::new(1.0, 2.0);
        let v = Vec2::new(3.0, -4.0);
        let q = p + v;
        assert_eq!(q, Point2::new(4.0, -2.0));
        assert_eq!(q - p, v);
        assert_eq!(q - v, p);
    }

    #[test]
    fn dot_and_cross_products() {
        let a = Vec2::new(1.0, 0.0);
        let b = Vec2::new(0.0, 1.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), 1.0);
        assert_eq!(b.cross(a), -1.0);
        assert_eq!(a.perp(), b);
    }

    #[test]
    fn norms() {
        let v = Vec2::new(3.0, 4.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.norm_sq(), 25.0);
        let u = v.normalized().unwrap();
        assert!((u.norm() - 1.0).abs() < 1e-15);
        assert!(Vec2::ZERO.normalized().is_none());
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(2.0, 4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point2::new(1.0, 2.0));
    }

    #[test]
    fn orientation_sign_convention() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(1.0, 0.0);
        let c = Point2::new(0.0, 1.0);
        assert!(orient2d(a, b, c) > 0.0); // counter-clockwise
        assert!(orient2d(a, c, b) < 0.0); // clockwise
        assert_eq!(orient2d(a, b, Point2::new(2.0, 0.0)), 0.0); // collinear
    }

    #[test]
    fn distances() {
        let a = Point2::new(1.0, 1.0);
        let b = Point2::new(4.0, 5.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_sq(b), 25.0);
    }

    #[test]
    fn component_min_max() {
        let a = Point2::new(1.0, 5.0);
        let b = Point2::new(3.0, 2.0);
        assert_eq!(a.min(b), Point2::new(1.0, 2.0));
        assert_eq!(a.max(b), Point2::new(3.0, 5.0));
    }
}
