//! 2D computational geometry primitives for unstructured-mesh stencil
//! evaluation.
//!
//! This crate provides the geometric substrate used throughout `ustencil`:
//!
//! * [`Point2`] / [`Vec2`] — double-precision points and vectors,
//! * [`Aabb`] — axis-aligned bounding boxes,
//! * [`Triangle`] — triangles with area/centroid/containment queries,
//! * [`ConvexPolygon`] — small inline-allocated convex polygons,
//! * [`clip`] — the Sutherland–Hodgman clipping algorithm (Algorithm 1 of the
//!   paper) and fan triangulation of the clipped region (Figure 4),
//! * [`rect`] — axis-aligned rectangles used as stencil lattice squares.
//!
//! All polygon operations are allocation-free up to
//! [`ConvexPolygon::CAPACITY`] vertices, which covers every case arising from
//! clipping a triangle against a convex stencil square (at most 7 vertices).

#![deny(missing_docs)]

pub mod aabb;
pub mod clip;
pub mod point;
pub mod polygon;
pub mod rect;
pub mod triangle;

pub use aabb::Aabb;
pub use clip::{clip_polygon, clip_triangle_rect, fan_triangulate};
pub use point::{Point2, Vec2};
pub use polygon::{ConvexPolygon, PolygonCapacityError};
pub use rect::Rect;
pub use triangle::Triangle;

/// Geometric tolerance used for degeneracy decisions (areas, containment).
///
/// Chosen relative to the unit-square domain used throughout the library;
/// intersection regions smaller than this in linear measure are treated as
/// empty.
pub const GEOM_EPS: f64 = 1e-12;
