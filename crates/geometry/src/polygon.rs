//! Small convex polygons with inline storage.

use crate::aabb::Aabb;
use crate::point::{orient2d, Point2};

/// A convex polygon with counter-clockwise vertex order and inline storage.
///
/// Clipping a triangle against an axis-aligned square produces at most 7
/// vertices; the inline capacity of 8 covers every polygon the library
/// constructs without heap allocation, and keeps the struct small enough
/// that the copies in the clipping hot loop stay cheap (millions of clips
/// run per post-processing pass).
#[derive(Debug, Clone, Copy)]
pub struct ConvexPolygon {
    verts: [Point2; Self::CAPACITY],
    len: u8,
}

impl ConvexPolygon {
    /// Maximum number of vertices storable inline.
    pub const CAPACITY: usize = 8;

    /// The empty polygon.
    #[inline]
    pub fn empty() -> Self {
        Self {
            verts: [Point2::ORIGIN; Self::CAPACITY],
            len: 0,
        }
    }

    /// Builds a polygon from a vertex slice (counter-clockwise order
    /// expected).
    ///
    /// Capacity overflow is a caller bug (no geometric pipeline in this
    /// library produces more than [`Self::CAPACITY`] vertices): debug
    /// builds assert, release builds keep the first `CAPACITY` vertices.
    /// Use [`try_from_vertices`](Self::try_from_vertices) at fallible
    /// boundaries.
    pub fn from_vertices(vertices: &[Point2]) -> Self {
        debug_assert!(
            vertices.len() <= Self::CAPACITY,
            "polygon exceeds inline capacity: {} > {}",
            vertices.len(),
            Self::CAPACITY
        );
        let mut p = Self::empty();
        for &v in &vertices[..vertices.len().min(Self::CAPACITY)] {
            p.push(v);
        }
        p
    }

    /// Builds a polygon from a vertex slice, reporting capacity overflow
    /// instead of asserting — the fallible public boundary for callers
    /// constructing polygons from external data.
    pub fn try_from_vertices(vertices: &[Point2]) -> Result<Self, PolygonCapacityError> {
        if vertices.len() > Self::CAPACITY {
            return Err(PolygonCapacityError {
                len: vertices.len(),
            });
        }
        Ok(Self::from_vertices(vertices))
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when the polygon has no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when the polygon has positive area (at least 3 vertices).
    #[inline]
    pub fn is_degenerate(&self, eps: f64) -> bool {
        self.len < 3 || self.area() <= eps
    }

    /// Appends a vertex. Pushing past capacity is a caller bug: debug
    /// builds assert ("polygon vertex overflow"), release builds drop the
    /// vertex instead of corrupting memory or aborting mid-run.
    #[inline]
    pub fn push(&mut self, p: Point2) {
        let i = self.len as usize;
        debug_assert!(i < Self::CAPACITY, "polygon vertex overflow");
        if i < Self::CAPACITY {
            self.verts[i] = p;
            self.len += 1;
        }
    }

    /// Removes all vertices.
    #[inline]
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// The vertices as a slice.
    #[inline]
    pub fn vertices(&self) -> &[Point2] {
        &self.verts[..self.len as usize]
    }

    /// Vertex by index (must be `< len`).
    #[inline]
    pub fn vertex(&self, i: usize) -> Point2 {
        self.verts[..self.len as usize][i]
    }

    /// Signed area by the shoelace formula; positive for counter-clockwise
    /// order.
    pub fn signed_area(&self) -> f64 {
        let v = self.vertices();
        if v.len() < 3 {
            return 0.0;
        }
        let mut acc = 0.0;
        let n = v.len();
        for i in 0..n {
            let a = v[i];
            let b = v[(i + 1) % n];
            acc += a.x * b.y - b.x * a.y;
        }
        0.5 * acc
    }

    /// Absolute area.
    #[inline]
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// Arithmetic mean of the vertices (equals the area centroid only for
    /// triangles; used as an interior reference point for convex polygons).
    pub fn vertex_mean(&self) -> Point2 {
        let v = self.vertices();
        let n = v.len().max(1) as f64;
        let (sx, sy) = v.iter().fold((0.0, 0.0), |(x, y), p| (x + p.x, y + p.y));
        Point2::new(sx / n, sy / n)
    }

    /// Closed containment test for convex CCW polygons: the point must lie on
    /// or left of every directed edge.
    pub fn contains(&self, p: Point2, eps: f64) -> bool {
        let v = self.vertices();
        if v.len() < 3 {
            return false;
        }
        let n = v.len();
        for i in 0..n {
            if orient2d(v[i], v[(i + 1) % n], p) < -eps {
                return false;
            }
        }
        true
    }

    /// Bounding box of the polygon.
    pub fn aabb(&self) -> Aabb {
        Aabb::from_points(self.vertices().iter().copied())
    }

    /// Ensures counter-clockwise orientation, reversing in place if needed.
    pub fn make_ccw(&mut self) {
        if self.signed_area() < 0.0 {
            self.verts[..self.len as usize].reverse();
        }
    }
}

impl PartialEq for ConvexPolygon {
    fn eq(&self, other: &Self) -> bool {
        self.vertices() == other.vertices()
    }
}

/// Error of [`ConvexPolygon::try_from_vertices`]: the supplied vertex count
/// exceeds the inline capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolygonCapacityError {
    /// Number of vertices supplied.
    pub len: usize,
}

impl std::fmt::Display for PolygonCapacityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "polygon exceeds inline capacity: {} > {}",
            self.len,
            ConvexPolygon::CAPACITY
        )
    }
}

impl std::error::Error for PolygonCapacityError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> ConvexPolygon {
        ConvexPolygon::from_vertices(&[
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(0.0, 1.0),
        ])
    }

    #[test]
    fn shoelace_area_of_square() {
        assert_eq!(square().signed_area(), 1.0);
        assert_eq!(square().area(), 1.0);
    }

    #[test]
    fn clockwise_square_has_negative_signed_area() {
        let mut p = square();
        p.verts[..4].reverse();
        assert_eq!(p.signed_area(), -1.0);
        p.make_ccw();
        assert_eq!(p.signed_area(), 1.0);
    }

    #[test]
    fn containment_of_convex_polygon() {
        let s = square();
        assert!(s.contains(Point2::new(0.5, 0.5), 0.0));
        assert!(s.contains(Point2::new(0.0, 0.0), 1e-12)); // vertex
        assert!(s.contains(Point2::new(0.5, 0.0), 1e-12)); // edge
        assert!(!s.contains(Point2::new(1.5, 0.5), 0.0));
        assert!(!s.contains(Point2::new(-0.1, 0.5), 0.0));
    }

    #[test]
    fn degenerate_polygons() {
        let mut p = ConvexPolygon::empty();
        assert!(p.is_degenerate(0.0));
        p.push(Point2::new(0.0, 0.0));
        p.push(Point2::new(1.0, 0.0));
        assert!(p.is_degenerate(0.0));
        assert_eq!(p.signed_area(), 0.0);
        // collinear triangle
        p.push(Point2::new(2.0, 0.0));
        assert!(p.is_degenerate(1e-15));
    }

    #[test]
    fn vertex_mean_of_square_is_center() {
        assert_eq!(square().vertex_mean(), Point2::new(0.5, 0.5));
    }

    #[test]
    fn aabb_of_polygon() {
        let b = square().aabb();
        assert_eq!(b.min, Point2::new(0.0, 0.0));
        assert_eq!(b.max, Point2::new(1.0, 1.0));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "overflow")]
    fn push_past_capacity_panics_in_debug() {
        let mut p = ConvexPolygon::empty();
        for i in 0..=ConvexPolygon::CAPACITY {
            p.push(Point2::new(i as f64, 0.0));
        }
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn push_past_capacity_saturates_in_release() {
        let mut p = ConvexPolygon::empty();
        for i in 0..=ConvexPolygon::CAPACITY {
            p.push(Point2::new(i as f64, 0.0));
        }
        assert_eq!(p.len(), ConvexPolygon::CAPACITY);
        assert_eq!(p.vertex(ConvexPolygon::CAPACITY - 1).x, 7.0);
    }

    #[test]
    fn try_from_vertices_reports_overflow() {
        let sq = [
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(0.0, 1.0),
        ];
        let ok = ConvexPolygon::try_from_vertices(&sq).unwrap();
        assert_eq!(ok.len(), 4);
        let too_many = [Point2::ORIGIN; ConvexPolygon::CAPACITY + 1];
        let err = ConvexPolygon::try_from_vertices(&too_many).unwrap_err();
        assert_eq!(err.len, ConvexPolygon::CAPACITY + 1);
        assert!(err.to_string().contains("capacity"));
    }
}
