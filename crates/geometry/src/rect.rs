//! Axis-aligned rectangles (stencil lattice squares).

use crate::aabb::Aabb;
use crate::point::Point2;
use crate::polygon::ConvexPolygon;

/// An axis-aligned rectangle given by its corner coordinates.
///
/// Stencil lattice cells (the "array of squares" of Figure 5 in the paper)
/// are represented as `Rect`s; clipping against a `Rect` uses a specialized
/// four-halfplane Sutherland–Hodgman pass that is branch-cheaper than the
/// general polygon clip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Left edge `x` coordinate.
    pub x0: f64,
    /// Bottom edge `y` coordinate.
    pub y0: f64,
    /// Right edge `x` coordinate.
    pub x1: f64,
    /// Top edge `y` coordinate.
    pub y1: f64,
}

impl Rect {
    /// Rectangle from corner coordinates; requires `x0 <= x1`, `y0 <= y1`.
    #[inline]
    pub const fn new(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        Self { x0, y0, x1, y1 }
    }

    /// Rectangle from min/max corner points.
    #[inline]
    pub fn from_corners(min: Point2, max: Point2) -> Self {
        Self::new(min.x, min.y, max.x, max.y)
    }

    /// Width in `x`.
    #[inline]
    pub fn width(&self) -> f64 {
        self.x1 - self.x0
    }

    /// Height in `y`.
    #[inline]
    pub fn height(&self) -> f64 {
        self.y1 - self.y0
    }

    /// Area.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Point2 {
        Point2::new(0.5 * (self.x0 + self.x1), 0.5 * (self.y0 + self.y1))
    }

    /// Closed containment test.
    #[inline]
    pub fn contains(&self, p: Point2) -> bool {
        p.x >= self.x0 && p.x <= self.x1 && p.y >= self.y0 && p.y <= self.y1
    }

    /// Conversion to a counter-clockwise convex polygon.
    pub fn to_polygon(&self) -> ConvexPolygon {
        ConvexPolygon::from_vertices(&[
            Point2::new(self.x0, self.y0),
            Point2::new(self.x1, self.y0),
            Point2::new(self.x1, self.y1),
            Point2::new(self.x0, self.y1),
        ])
    }

    /// Conversion to an [`Aabb`].
    #[inline]
    pub fn to_aabb(&self) -> Aabb {
        Aabb::new(Point2::new(self.x0, self.y0), Point2::new(self.x1, self.y1))
    }

    /// The rectangle translated by `(dx, dy)`.
    #[inline]
    pub fn translate(&self, dx: f64, dy: f64) -> Rect {
        Rect::new(self.x0 + dx, self.y0 + dy, self.x1 + dx, self.y1 + dy)
    }

    /// Closed overlap test against a bounding box.
    #[inline]
    pub fn intersects_aabb(&self, b: &Aabb) -> bool {
        self.x0 <= b.max.x && b.min.x <= self.x1 && self.y0 <= b.max.y && b.min.y <= self.y1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_measures() {
        let r = Rect::new(1.0, 2.0, 4.0, 6.0);
        assert_eq!(r.width(), 3.0);
        assert_eq!(r.height(), 4.0);
        assert_eq!(r.area(), 12.0);
        assert_eq!(r.center(), Point2::new(2.5, 4.0));
    }

    #[test]
    fn polygon_conversion_is_ccw_with_same_area() {
        let r = Rect::new(0.0, 0.0, 2.0, 1.0);
        let p = r.to_polygon();
        assert_eq!(p.len(), 4);
        assert_eq!(p.signed_area(), r.area());
    }

    #[test]
    fn containment_and_translation() {
        let r = Rect::new(0.0, 0.0, 1.0, 1.0);
        assert!(r.contains(Point2::new(1.0, 1.0)));
        assert!(!r.contains(Point2::new(1.0001, 1.0)));
        let t = r.translate(5.0, -1.0);
        assert!(t.contains(Point2::new(5.5, -0.5)));
    }

    #[test]
    fn aabb_overlap() {
        let r = Rect::new(0.0, 0.0, 1.0, 1.0);
        let inside = Aabb::new(Point2::new(0.25, 0.25), Point2::new(0.5, 0.5));
        let touching = Aabb::new(Point2::new(1.0, 0.0), Point2::new(2.0, 1.0));
        let outside = Aabb::new(Point2::new(2.0, 2.0), Point2::new(3.0, 3.0));
        assert!(r.intersects_aabb(&inside));
        assert!(r.intersects_aabb(&touching));
        assert!(!r.intersects_aabb(&outside));
    }
}
