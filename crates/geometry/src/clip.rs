//! Sutherland–Hodgman polygon clipping and fan triangulation.
//!
//! This is Algorithm 1 of the paper: the intersection of the convex *subject*
//! polygon (a mesh triangle) with the convex *clip* polygon (a stencil
//! lattice square) is computed by successively clipping the subject against
//! each directed edge of the clip polygon. The resulting convex intersection
//! polygon is then divided into triangular integration sub-regions by a fan
//! triangulation from its first vertex (Figure 4).

use crate::point::{orient2d, Point2};
use crate::polygon::ConvexPolygon;
use crate::rect::Rect;
use crate::triangle::Triangle;

/// Clips the convex `subject` polygon against the convex counter-clockwise
/// `clip` polygon, returning their intersection (possibly empty).
///
/// Both polygons must be convex; `clip` must be counter-clockwise so that
/// "inside" is the left side of each directed edge. The subject's orientation
/// is irrelevant (output orientation follows the subject's).
///
/// The intersection of convex polygons with `n` and `m` vertices has at most
/// `n + m` vertices, which must fit in [`ConvexPolygon::CAPACITY`]; the
/// library's own use (triangle vs. stencil square, at most 7) always does.
pub fn clip_polygon(subject: &ConvexPolygon, clip: &ConvexPolygon) -> ConvexPolygon {
    let mut output = *subject;
    let cv = clip.vertices();
    let n = cv.len();
    let mut input = ConvexPolygon::empty();
    for i in 0..n {
        if output.is_empty() {
            break;
        }
        let e0 = cv[i];
        let e1 = cv[(i + 1) % n];
        std::mem::swap(&mut input, &mut output);
        output.clear();
        clip_against_edge(&input, &mut output, |p| orient2d(e0, e1, p));
    }
    output
}

/// Clips a triangle against an axis-aligned rectangle.
///
/// This is the hot path of the stencil evaluators: each stencil lattice
/// square is a `Rect`, and the mesh/stencil intersection (Figure 5) reduces
/// to millions of triangle-vs-square clips. The four half-plane tests use
/// plain coordinate comparisons instead of cross products, which is both
/// faster and exactly consistent with the lattice geometry.
pub fn clip_triangle_rect(tri: &Triangle, rect: &Rect) -> ConvexPolygon {
    let mut output = tri.to_polygon();
    let mut input = ConvexPolygon::empty();

    // Left edge: keep x >= x0.
    std::mem::swap(&mut input, &mut output);
    output.clear();
    clip_against_edge(&input, &mut output, |p| p.x - rect.x0);
    if output.is_empty() {
        return output;
    }

    // Right edge: keep x <= x1.
    std::mem::swap(&mut input, &mut output);
    output.clear();
    clip_against_edge(&input, &mut output, |p| rect.x1 - p.x);
    if output.is_empty() {
        return output;
    }

    // Bottom edge: keep y >= y0.
    std::mem::swap(&mut input, &mut output);
    output.clear();
    clip_against_edge(&input, &mut output, |p| p.y - rect.y0);
    if output.is_empty() {
        return output;
    }

    // Top edge: keep y <= y1.
    std::mem::swap(&mut input, &mut output);
    output.clear();
    clip_against_edge(&input, &mut output, |p| rect.y1 - p.y);
    output
}

/// One Sutherland–Hodgman pass: keeps the part of `input` where
/// `signed_dist >= 0`. `signed_dist` must be affine (a half-plane).
#[inline]
fn clip_against_edge<F: Fn(Point2) -> f64>(
    input: &ConvexPolygon,
    output: &mut ConvexPolygon,
    signed_dist: F,
) {
    let verts = input.vertices();
    let n = verts.len();
    if n == 0 {
        return;
    }
    let mut s = verts[n - 1];
    let mut ds = signed_dist(s);
    for &e in verts {
        let de = signed_dist(e);
        if de >= 0.0 {
            if ds < 0.0 {
                output.push(intersect_at(s, e, ds, de));
            }
            output.push(e);
        } else if ds >= 0.0 {
            output.push(intersect_at(s, e, ds, de));
        }
        s = e;
        ds = de;
    }
}

/// Point where segment `s -> e` crosses the zero level of an affine function
/// with values `ds` at `s` and `de` at `e` (signs must differ).
#[inline]
fn intersect_at(s: Point2, e: Point2, ds: f64, de: f64) -> Point2 {
    let t = ds / (ds - de);
    s.lerp(e, t)
}

/// Fan-triangulates a convex polygon from its first vertex.
///
/// Returns an iterator of triangles `(v0, v_i, v_{i+1})`; empty for polygons
/// with fewer than three vertices. The triangulation covers the polygon
/// exactly (areas sum to the polygon area).
pub fn fan_triangulate(poly: &ConvexPolygon) -> impl Iterator<Item = Triangle> + '_ {
    let verts = poly.vertices();
    let n = verts.len();
    (1..n.saturating_sub(1)).map(move |i| Triangle::new(verts[0], verts[i], verts[i + 1]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tri(ax: f64, ay: f64, bx: f64, by: f64, cx: f64, cy: f64) -> Triangle {
        Triangle::new(
            Point2::new(ax, ay),
            Point2::new(bx, by),
            Point2::new(cx, cy),
        )
    }

    fn fan_area(poly: &ConvexPolygon) -> f64 {
        fan_triangulate(poly).map(|t| t.area()).sum()
    }

    #[test]
    fn triangle_fully_inside_rect_is_unchanged() {
        let t = tri(0.2, 0.2, 0.8, 0.2, 0.5, 0.8);
        let r = Rect::new(0.0, 0.0, 1.0, 1.0);
        let clipped = clip_triangle_rect(&t, &r);
        assert_eq!(clipped.len(), 3);
        assert!((clipped.area() - t.area()).abs() < 1e-15);
    }

    #[test]
    fn triangle_fully_outside_rect_is_empty() {
        let t = tri(2.0, 2.0, 3.0, 2.0, 2.0, 3.0);
        let r = Rect::new(0.0, 0.0, 1.0, 1.0);
        assert!(clip_triangle_rect(&t, &r).is_empty());
    }

    #[test]
    fn rect_inside_triangle_yields_rect() {
        let t = tri(-10.0, -10.0, 10.0, -10.0, 0.0, 10.0);
        let r = Rect::new(-0.5, -0.5, 0.5, 0.5);
        let clipped = clip_triangle_rect(&t, &r);
        assert_eq!(clipped.len(), 4);
        assert!((clipped.area() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn half_overlap_area() {
        // Right triangle with legs 2; rect covers x in [0,1]: clipped area is
        // the trapezoid under the hypotenuse y = 2 - x from x=0..1 => 1.5.
        let t = tri(0.0, 0.0, 2.0, 0.0, 0.0, 2.0);
        let r = Rect::new(0.0, 0.0, 1.0, 2.0);
        let clipped = clip_triangle_rect(&t, &r);
        assert!((clipped.area() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn clip_produces_at_most_seven_vertices() {
        // A triangle cutting all four rect corners produces the max vertex
        // count (7 = 3 + 4).
        let t = tri(0.5, -0.6, 1.6, 0.5, -0.6, 0.55);
        let r = Rect::new(0.0, 0.0, 1.0, 1.0);
        let clipped = clip_triangle_rect(&t, &r);
        assert!(clipped.len() <= 7, "got {} vertices", clipped.len());
        assert!(!clipped.is_empty());
    }

    #[test]
    fn general_polygon_clip_matches_rect_clip() {
        let t = tri(0.1, -0.5, 1.5, 0.3, 0.2, 1.2);
        let r = Rect::new(0.0, 0.0, 1.0, 1.0);
        let a = clip_triangle_rect(&t, &r);
        let b = clip_polygon(&t.to_polygon(), &r.to_polygon());
        assert!((a.area() - b.area()).abs() < 1e-13);
    }

    #[test]
    fn clip_against_self_is_identity_area() {
        let t = tri(0.0, 0.0, 1.0, 0.0, 0.3, 0.9);
        let p = t.to_polygon();
        let c = clip_polygon(&p, &p);
        assert!((c.area() - p.area()).abs() < 1e-14);
    }

    #[test]
    fn fan_triangulation_covers_polygon() {
        let t = tri(0.5, -0.6, 1.6, 0.5, -0.6, 0.55);
        let r = Rect::new(0.0, 0.0, 1.0, 1.0);
        let clipped = clip_triangle_rect(&t, &r);
        assert!((fan_area(&clipped) - clipped.area()).abs() < 1e-13);
    }

    #[test]
    fn partition_of_rect_grid_recovers_triangle_area() {
        // Clip a triangle against every cell of a 4x4 grid covering it; the
        // clipped areas must sum to the full triangle area (no double count,
        // nothing missed).
        let t = tri(0.13, 0.21, 3.7, 0.6, 1.9, 3.4);
        let mut total = 0.0;
        for i in 0..4 {
            for j in 0..4 {
                let r = Rect::new(i as f64, j as f64, (i + 1) as f64, (j + 1) as f64);
                total += clip_triangle_rect(&t, &r).area();
            }
        }
        assert!(
            (total - t.area()).abs() < 1e-12,
            "{} vs {}",
            total,
            t.area()
        );
    }

    #[test]
    fn clockwise_subject_clips_to_same_area() {
        let ccw = tri(0.1, -0.5, 1.5, 0.3, 0.2, 1.2);
        let cw = Triangle::new(ccw.a, ccw.c, ccw.b);
        let r = Rect::new(0.0, 0.0, 1.0, 1.0);
        let a = clip_triangle_rect(&ccw, &r).area();
        let b = clip_triangle_rect(&cw, &r).area();
        assert!((a - b).abs() < 1e-13);
    }

    #[test]
    fn degenerate_sliver_clips_to_zero_area() {
        let t = tri(0.0, 0.0, 1.0, 0.0, 2.0, 0.0);
        let r = Rect::new(0.0, -1.0, 1.0, 1.0);
        let clipped = clip_triangle_rect(&t, &r);
        assert!(clipped.area() < 1e-15);
    }

    #[test]
    fn touching_edge_yields_zero_area() {
        // Triangle sits exactly on top of the rect; intersection is a line.
        let t = tri(0.0, 1.0, 1.0, 1.0, 0.5, 2.0);
        let r = Rect::new(0.0, 0.0, 1.0, 1.0);
        let clipped = clip_triangle_rect(&t, &r);
        assert!(clipped.area() < 1e-15);
    }
}
