//! Axis-aligned bounding boxes.

use crate::point::{Point2, Vec2};

/// An axis-aligned bounding box, stored as min/max corners.
///
/// An `Aabb` may be *empty* (min > max in some dimension); empty boxes behave
/// as the identity under [`Aabb::union`] and intersect nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    /// Lower-left corner.
    pub min: Point2,
    /// Upper-right corner.
    pub max: Point2,
}

impl Aabb {
    /// The empty box: identity for [`union`](Self::union).
    pub const EMPTY: Aabb = Aabb {
        min: Point2::new(f64::INFINITY, f64::INFINITY),
        max: Point2::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
    };

    /// Box from explicit corners. `min` must be component-wise `<= max`
    /// for a non-empty box; no normalization is performed.
    #[inline]
    pub const fn new(min: Point2, max: Point2) -> Self {
        Self { min, max }
    }

    /// Smallest box containing all points of the iterator.
    pub fn from_points<I: IntoIterator<Item = Point2>>(points: I) -> Self {
        points
            .into_iter()
            .fold(Self::EMPTY, |b, p| b.union_point(p))
    }

    /// True when the box contains no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y
    }

    /// Width in `x`.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height in `y`.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Center point. Meaningless for empty boxes.
    #[inline]
    pub fn center(&self) -> Point2 {
        Point2::new(
            0.5 * (self.min.x + self.max.x),
            0.5 * (self.min.y + self.max.y),
        )
    }

    /// Closed containment test.
    #[inline]
    pub fn contains(&self, p: Point2) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// True when the two boxes share at least one point (closed test).
    #[inline]
    pub fn intersects(&self, other: &Aabb) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// Smallest box containing both inputs.
    #[inline]
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb::new(self.min.min(other.min), self.max.max(other.max))
    }

    /// Smallest box containing this box and the point.
    #[inline]
    pub fn union_point(&self, p: Point2) -> Aabb {
        Aabb::new(self.min.min(p), self.max.max(p))
    }

    /// The box grown by `margin` on every side.
    #[inline]
    pub fn inflate(&self, margin: f64) -> Aabb {
        let d = Vec2::new(margin, margin);
        Aabb::new(self.min - d, self.max + d)
    }

    /// The box translated by `offset`.
    #[inline]
    pub fn translate(&self, offset: Vec2) -> Aabb {
        Aabb::new(self.min + offset, self.max + offset)
    }

    /// Area of the box; zero for empty boxes.
    #[inline]
    pub fn area(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.width() * self.height()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> Aabb {
        Aabb::new(Point2::new(0.0, 0.0), Point2::new(1.0, 1.0))
    }

    #[test]
    fn empty_box_properties() {
        assert!(Aabb::EMPTY.is_empty());
        assert_eq!(Aabb::EMPTY.area(), 0.0);
        let u = unit();
        assert_eq!(Aabb::EMPTY.union(&u), u);
        assert!(!Aabb::EMPTY.intersects(&u));
    }

    #[test]
    fn from_points_bounds_all() {
        let pts = [
            Point2::new(0.5, -1.0),
            Point2::new(-2.0, 3.0),
            Point2::new(1.0, 0.0),
        ];
        let b = Aabb::from_points(pts);
        assert_eq!(b.min, Point2::new(-2.0, -1.0));
        assert_eq!(b.max, Point2::new(1.0, 3.0));
        for p in pts {
            assert!(b.contains(p));
        }
    }

    #[test]
    fn intersection_is_symmetric_and_touching_counts() {
        let a = unit();
        let b = Aabb::new(Point2::new(1.0, 0.0), Point2::new(2.0, 1.0));
        assert!(a.intersects(&b)); // shares the edge x = 1
        assert!(b.intersects(&a));
        let c = Aabb::new(Point2::new(1.5, 0.0), Point2::new(2.0, 1.0));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn inflate_and_translate() {
        let b = unit().inflate(0.5);
        assert_eq!(b.min, Point2::new(-0.5, -0.5));
        assert_eq!(b.max, Point2::new(1.5, 1.5));
        let t = unit().translate(Vec2::new(2.0, -1.0));
        assert_eq!(t.min, Point2::new(2.0, -1.0));
        assert_eq!(t.center(), Point2::new(2.5, -0.5));
    }

    #[test]
    fn area_width_height() {
        let b = Aabb::new(Point2::new(0.0, 0.0), Point2::new(2.0, 3.0));
        assert_eq!(b.width(), 2.0);
        assert_eq!(b.height(), 3.0);
        assert_eq!(b.area(), 6.0);
    }
}
