//! Triangles and affine reference-element maps.

use crate::aabb::Aabb;
use crate::point::{orient2d, Point2, Vec2};
use crate::polygon::ConvexPolygon;

/// A triangle given by its three vertices.
///
/// Mesh elements are stored in counter-clockwise orientation; all derived
/// quantities (area, reference map Jacobian) assume nothing about orientation
/// except where documented.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triangle {
    /// First vertex.
    pub a: Point2,
    /// Second vertex.
    pub b: Point2,
    /// Third vertex.
    pub c: Point2,
}

impl Triangle {
    /// Triangle from three vertices.
    #[inline]
    pub const fn new(a: Point2, b: Point2, c: Point2) -> Self {
        Self { a, b, c }
    }

    /// Signed area; positive when the vertices are counter-clockwise.
    #[inline]
    pub fn signed_area(&self) -> f64 {
        0.5 * orient2d(self.a, self.b, self.c)
    }

    /// Absolute area.
    #[inline]
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// Area centroid.
    #[inline]
    pub fn centroid(&self) -> Point2 {
        Point2::new(
            (self.a.x + self.b.x + self.c.x) / 3.0,
            (self.a.y + self.b.y + self.c.y) / 3.0,
        )
    }

    /// Bounding box.
    #[inline]
    pub fn aabb(&self) -> Aabb {
        Aabb::from_points([self.a, self.b, self.c])
    }

    /// Length of the longest edge.
    pub fn longest_edge(&self) -> f64 {
        let ab = self.a.distance(self.b);
        let bc = self.b.distance(self.c);
        let ca = self.c.distance(self.a);
        ab.max(bc).max(ca)
    }

    /// Closed containment test (works for either orientation).
    pub fn contains(&self, p: Point2, eps: f64) -> bool {
        let d1 = orient2d(self.a, self.b, p);
        let d2 = orient2d(self.b, self.c, p);
        let d3 = orient2d(self.c, self.a, p);
        let has_neg = d1 < -eps || d2 < -eps || d3 < -eps;
        let has_pos = d1 > eps || d2 > eps || d3 > eps;
        !(has_neg && has_pos)
    }

    /// Maps barycentric-style reference coordinates `(u, v)` with
    /// `u, v >= 0, u + v <= 1` to physical space:
    /// `x(u, v) = a + u (b - a) + v (c - a)`.
    #[inline]
    pub fn map_from_unit(&self, u: f64, v: f64) -> Point2 {
        self.a + u * (self.b - self.a) + v * (self.c - self.a)
    }

    /// Inverse of [`map_from_unit`](Self::map_from_unit): physical point to
    /// reference coordinates. Returns `None` for degenerate triangles.
    pub fn map_to_unit(&self, p: Point2) -> Option<(f64, f64)> {
        let e1 = self.b - self.a;
        let e2 = self.c - self.a;
        let det = e1.cross(e2);
        if det.abs() < f64::MIN_POSITIVE * 16.0 {
            return None;
        }
        let d = p - self.a;
        let u = d.cross(e2) / det;
        let v = e1.cross(d) / det;
        Some((u, v))
    }

    /// Jacobian determinant of the reference map (`2 * signed_area`).
    #[inline]
    pub fn jacobian(&self) -> f64 {
        (self.b - self.a).cross(self.c - self.a)
    }

    /// The triangle translated by `offset`.
    #[inline]
    pub fn translate(&self, offset: Vec2) -> Triangle {
        Triangle::new(self.a + offset, self.b + offset, self.c + offset)
    }

    /// Conversion to a [`ConvexPolygon`] in counter-clockwise order
    /// (reverses clockwise input).
    pub fn to_polygon(&self) -> ConvexPolygon {
        let mut p = ConvexPolygon::from_vertices(&[self.a, self.b, self.c]);
        p.make_ccw();
        p
    }

    /// Vertices as an array.
    #[inline]
    pub fn vertices(&self) -> [Point2; 3] {
        [self.a, self.b, self.c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> Triangle {
        Triangle::new(
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(0.0, 1.0),
        )
    }

    #[test]
    fn area_and_centroid() {
        let t = unit();
        assert_eq!(t.signed_area(), 0.5);
        assert_eq!(t.area(), 0.5);
        let c = t.centroid();
        assert!((c.x - 1.0 / 3.0).abs() < 1e-15);
        assert!((c.y - 1.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn clockwise_triangle_negative_area_still_contains() {
        let t = Triangle::new(
            Point2::new(0.0, 0.0),
            Point2::new(0.0, 1.0),
            Point2::new(1.0, 0.0),
        );
        assert_eq!(t.signed_area(), -0.5);
        assert!(t.contains(Point2::new(0.25, 0.25), 0.0));
        assert_eq!(t.to_polygon().signed_area(), 0.5);
    }

    #[test]
    fn containment_interior_edge_vertex_exterior() {
        let t = unit();
        assert!(t.contains(Point2::new(0.2, 0.2), 0.0));
        assert!(t.contains(Point2::new(0.5, 0.5), 1e-12)); // hypotenuse
        assert!(t.contains(Point2::new(0.0, 0.0), 1e-12)); // vertex
        assert!(!t.contains(Point2::new(0.6, 0.6), 1e-12));
        assert!(!t.contains(Point2::new(-0.1, 0.5), 1e-12));
    }

    #[test]
    fn reference_map_round_trip() {
        let t = Triangle::new(
            Point2::new(1.0, 2.0),
            Point2::new(4.0, 2.5),
            Point2::new(2.0, 5.0),
        );
        for &(u, v) in &[(0.0, 0.0), (1.0, 0.0), (0.0, 1.0), (0.25, 0.5), (0.3, 0.3)] {
            let p = t.map_from_unit(u, v);
            let (uu, vv) = t.map_to_unit(p).unwrap();
            assert!((uu - u).abs() < 1e-13 && (vv - v).abs() < 1e-13);
        }
    }

    #[test]
    fn degenerate_triangle_has_no_inverse_map() {
        let t = Triangle::new(
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(2.0, 2.0),
        );
        assert_eq!(t.area(), 0.0);
        assert!(t.map_to_unit(Point2::new(0.5, 0.5)).is_none());
    }

    #[test]
    fn jacobian_is_twice_signed_area() {
        let t = unit();
        assert_eq!(t.jacobian(), 2.0 * t.signed_area());
    }

    #[test]
    fn longest_edge() {
        let t = unit();
        assert!((t.longest_edge() - 2f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn translation_preserves_area() {
        let t = unit().translate(Vec2::new(3.0, -7.0));
        assert_eq!(t.area(), 0.5);
        assert_eq!(t.a, Point2::new(3.0, -7.0));
    }
}
