//! Property-based tests for Sutherland–Hodgman clipping.
//!
//! These check the geometric invariants that the stencil evaluators rely on:
//! the clipped region is contained in both inputs, clipping against a
//! partition of the plane conserves area, and fan triangulation reproduces
//! the clipped area exactly.

use proptest::prelude::*;
use ustencil_geometry::{
    clip_polygon, clip_triangle_rect, fan_triangulate, Point2, Rect, Triangle,
};

fn arb_point(range: f64) -> impl Strategy<Value = Point2> {
    (-range..range, -range..range).prop_map(|(x, y)| Point2::new(x, y))
}

fn arb_triangle(range: f64) -> impl Strategy<Value = Triangle> {
    (arb_point(range), arb_point(range), arb_point(range))
        .prop_map(|(a, b, c)| Triangle::new(a, b, c))
        .prop_filter("non-degenerate", |t| t.area() > 1e-6)
}

fn arb_rect(range: f64) -> impl Strategy<Value = Rect> {
    (-range..range, -range..range, 0.05..range, 0.05..range)
        .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every vertex of the clipped polygon lies in both the triangle and the
    /// rectangle (up to tolerance for constructed intersection points).
    #[test]
    fn clipped_polygon_contained_in_both(t in arb_triangle(2.0), r in arb_rect(2.0)) {
        let clipped = clip_triangle_rect(&t, &r);
        let eps = 1e-9;
        for &v in clipped.vertices() {
            prop_assert!(t.contains(v, eps), "vertex {:?} escapes triangle", v);
            prop_assert!(
                v.x >= r.x0 - eps && v.x <= r.x1 + eps && v.y >= r.y0 - eps && v.y <= r.y1 + eps,
                "vertex {:?} escapes rect", v
            );
        }
    }

    /// Clipped area never exceeds either input's area.
    #[test]
    fn clipped_area_bounded(t in arb_triangle(2.0), r in arb_rect(2.0)) {
        let a = clip_triangle_rect(&t, &r).area();
        prop_assert!(a <= t.area() + 1e-9);
        prop_assert!(a <= r.area() + 1e-9);
    }

    /// Clipping against a grid of rects that tiles a region covering the
    /// triangle conserves the triangle's area exactly.
    #[test]
    fn grid_partition_conserves_area(t in arb_triangle(1.5)) {
        // 4x4 grid over [-2,2]^2 always covers the triangle.
        let mut total = 0.0;
        for i in 0..4 {
            for j in 0..4 {
                let r = Rect::new(
                    -2.0 + i as f64, -2.0 + j as f64,
                    -1.0 + i as f64, -1.0 + j as f64,
                );
                total += clip_triangle_rect(&t, &r).area();
            }
        }
        prop_assert!((total - t.area()).abs() < 1e-9 * (1.0 + t.area()),
            "partition area {} != triangle area {}", total, t.area());
    }

    /// Fan triangulation of the clipped polygon has the same area as the
    /// polygon itself.
    #[test]
    fn fan_triangulation_area(t in arb_triangle(2.0), r in arb_rect(2.0)) {
        let clipped = clip_triangle_rect(&t, &r);
        let fan: f64 = fan_triangulate(&clipped).map(|s| s.area()).sum();
        prop_assert!((fan - clipped.area()).abs() < 1e-12 + 1e-12 * clipped.area());
    }

    /// The specialized rect clip agrees with the general polygon clip.
    #[test]
    fn rect_clip_matches_general_clip(t in arb_triangle(2.0), r in arb_rect(2.0)) {
        let fast = clip_triangle_rect(&t, &r).area();
        let general = clip_polygon(&t.to_polygon(), &r.to_polygon()).area();
        prop_assert!((fast - general).abs() < 1e-10);
    }

    /// Clipping is monotone under rect growth: a larger rect never yields a
    /// smaller intersection.
    #[test]
    fn monotone_in_rect(t in arb_triangle(2.0), r in arb_rect(1.5), grow in 0.0..1.0f64) {
        let big = Rect::new(r.x0 - grow, r.y0 - grow, r.x1 + grow, r.y1 + grow);
        let a_small = clip_triangle_rect(&t, &r).area();
        let a_big = clip_triangle_rect(&t, &big).area();
        prop_assert!(a_big + 1e-12 >= a_small);
    }

    /// Triangle containment in its own AABB-derived rect is the identity.
    #[test]
    fn clip_by_own_bbox_is_identity(t in arb_triangle(2.0)) {
        let b = t.aabb();
        let r = Rect::from_corners(b.min, b.max);
        let clipped = clip_triangle_rect(&t, &r);
        prop_assert!((clipped.area() - t.area()).abs() < 1e-10 * (1.0 + t.area()));
    }
}
