//! The request layer: a bounded submission queue, worker threads, and
//! same-plan batch coalescing.
//!
//! Clients [`submit`](ServerClient::submit) field-evaluation requests and
//! block on a [`Ticket`] for the answer. Workers pop the queue head and
//! *coalesce*: every queued request against the same [`PlanKey`] (up to
//! `max_batch`) joins the head's batch and is served by a single
//! [`apply_many`](ustencil_plan::EvalPlan::apply_many) sweep — one pass
//! over the plan's CSR serving many tenants' fields, which is where the
//! compile-once/apply-many economics of the paper turn into service
//! throughput.
//!
//! Admission is backpressured: the queue holds at most `queue_capacity`
//! requests and `submit` blocks until space frees, so a burst slows
//! producers instead of growing memory without bound.
//!
//! Every request is timed with two microsecond clocks — queue wait
//! (admission → its batch starts) and service latency (admission → answer
//! ready) — recorded into per-tenant [`Hist64`] ledgers and run-wide
//! histograms, which is where the reported p50/p99 numbers come from.

use crate::cache::{Outcome, PlanCache};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;
use ustencil_core::{ComputationGrid, Metrics, TenantLedger};
use ustencil_dg::DgField;
use ustencil_mesh::TriMesh;
use ustencil_plan::{ApplyOptions, CompileOptions, EvalPlan, PlanKey};
use ustencil_trace::Hist64;

/// Configuration of a [`PlanServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads draining the queue (default 2; clamped to ≥ 1).
    pub workers: usize,
    /// Bounded queue capacity; `submit` blocks when full (default 64).
    pub queue_capacity: usize,
    /// Maximum requests coalesced into one apply batch (default 32).
    pub max_batch: usize,
    /// Compile options for cache misses (also part of every request's
    /// [`PlanKey`], so two servers with different kernels never share
    /// plans by accident).
    pub compile: CompileOptions,
    /// Apply options for the batched SpMV sweeps.
    pub apply: ApplyOptions,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 64,
            max_batch: 32,
            compile: CompileOptions::default(),
            apply: ApplyOptions::default(),
        }
    }
}

/// A shared evaluation problem: the mesh and grid a tenant's fields live
/// on. Wrapped in `Arc`s so a popular catalog entry is shared, not cloned,
/// across requests.
#[derive(Debug, Clone)]
pub struct Problem {
    /// The mesh.
    pub mesh: Arc<TriMesh>,
    /// The evaluation grid.
    pub grid: Arc<ComputationGrid>,
    /// Field polynomial degree.
    pub degree: usize,
}

/// The answer to one request.
#[derive(Debug, Clone)]
pub struct Response {
    /// Post-processed value at each grid point.
    pub values: Vec<f64>,
    /// Microseconds between admission and the start of the serving batch.
    pub queue_wait_us: u64,
    /// Microseconds between admission and this response being ready.
    pub service_us: u64,
    /// How the serving batch's plan lookup was satisfied (batch followers
    /// report [`Outcome::Hit`]: they rode an already-resolved plan).
    pub outcome: Outcome,
    /// Requests served by the same batch (1 = no coalescing happened).
    pub batch_size: usize,
}

/// A pending answer; [`wait`](Ticket::wait) blocks until the serving
/// worker replies.
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Response>,
}

impl Ticket {
    /// Blocks until the response arrives.
    ///
    /// # Panics
    /// Panics if the server shut down without answering (a bug: shutdown
    /// drains the queue first).
    pub fn wait(self) -> Response {
        self.rx.recv().expect("server dropped a pending request")
    }
}

struct Pending {
    tenant: usize,
    key: PlanKey,
    problem: Arc<Problem>,
    field: DgField,
    enqueued: Instant,
    reply: mpsc::Sender<Response>,
}

struct QueueState {
    queue: VecDeque<Pending>,
    closed: bool,
}

/// Per-tenant accumulator, converted to [`TenantLedger`] at shutdown.
#[derive(Debug, Clone, Copy)]
struct LedgerAcc {
    requests: u64,
    hits: u64,
    misses: u64,
    compiles: u64,
    batched_rows: u64,
    queue_wait_us: Hist64,
    service_us: Hist64,
}

impl LedgerAcc {
    fn new() -> Self {
        Self {
            requests: 0,
            hits: 0,
            misses: 0,
            compiles: 0,
            batched_rows: 0,
            queue_wait_us: Hist64::new(),
            service_us: Hist64::new(),
        }
    }
}

/// One worker's service totals, surfaced as a `RunRecord` patch.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerStat {
    /// Nanoseconds the worker spent serving batches (not idle waiting).
    pub busy_ns: u64,
    /// Batches the worker executed.
    pub batches: u64,
    /// Output rows the worker evaluated.
    pub rows: u64,
    /// Summed apply metrics of the worker's batches.
    pub metrics: Metrics,
}

/// Everything the server observed, returned by
/// [`shutdown`](PlanServer::shutdown).
#[derive(Debug, Clone)]
pub struct ServeLedgers {
    /// Per-tenant ledgers, ordered by tenant id.
    pub tenants: Vec<TenantLedger>,
    /// Per-worker service totals.
    pub workers: Vec<WorkerStat>,
    /// Final cache counters and resident size.
    pub cache: crate::cache::CacheSnapshot,
    /// Coalesced batches executed.
    pub batches: u64,
    /// Output rows evaluated across all batches.
    pub batched_rows: u64,
    /// Submissions that had to block on a full queue (backpressure events).
    pub blocked_submits: u64,
    /// Run-wide queue-wait distribution, microseconds.
    pub queue_wait_us: Hist64,
    /// Run-wide service-latency distribution, microseconds.
    pub service_us: Hist64,
}

struct Shared {
    state: Mutex<QueueState>,
    /// Signals workers that work arrived (or the queue closed).
    work: Condvar,
    /// Signals submitters that queue space freed.
    space: Condvar,
    capacity: usize,
    max_batch: usize,
    cache: PlanCache,
    compile: CompileOptions,
    apply: ApplyOptions,
    ledgers: Mutex<Vec<LedgerAcc>>,
    global_hists: Mutex<(Hist64, Hist64)>,
    worker_stats: Mutex<Vec<WorkerStat>>,
    blocked_submits: AtomicU64,
}

/// The running service: a [`PlanCache`] fronted by worker threads and a
/// bounded, coalescing submission queue.
#[derive(Debug)]
pub struct PlanServer {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("capacity", &self.capacity)
            .field("max_batch", &self.max_batch)
            .field("cache", &self.cache)
            .finish()
    }
}

/// A cloneable submission handle.
#[derive(Debug, Clone)]
pub struct ServerClient {
    shared: Arc<Shared>,
}

impl PlanServer {
    /// Starts `config.workers` worker threads over `cache`, tracking
    /// `n_tenants` ledgers.
    pub fn start(cache: PlanCache, config: ServerConfig, n_tenants: usize) -> Self {
        let n_workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                closed: false,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            capacity: config.queue_capacity.max(1),
            max_batch: config.max_batch.max(1),
            cache,
            compile: config.compile,
            apply: config.apply,
            ledgers: Mutex::new(vec![LedgerAcc::new(); n_tenants]),
            global_hists: Mutex::new((Hist64::new(), Hist64::new())),
            worker_stats: Mutex::new(vec![WorkerStat::default(); n_workers]),
            blocked_submits: AtomicU64::new(0),
        });
        let workers = (0..n_workers)
            .map(|w| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("serve-worker-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawn serve worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// A cloneable handle for submitting requests.
    pub fn client(&self) -> ServerClient {
        ServerClient {
            shared: self.shared.clone(),
        }
    }

    /// The underlying cache's counters right now.
    pub fn cache_snapshot(&self) -> crate::cache::CacheSnapshot {
        self.shared.cache.snapshot()
    }

    /// Closes the queue, drains remaining requests, joins the workers, and
    /// returns every ledger the run accumulated.
    pub fn shutdown(self) -> ServeLedgers {
        {
            let mut state = self.shared.state.lock().expect("queue poisoned");
            state.closed = true;
        }
        self.shared.work.notify_all();
        self.shared.space.notify_all();
        for w in self.workers {
            w.join().expect("serve worker panicked");
        }
        let shared = &self.shared;
        let tenants = shared
            .ledgers
            .lock()
            .expect("ledgers poisoned")
            .iter()
            .enumerate()
            .map(|(t, l)| TenantLedger {
                tenant: t as u64,
                requests: l.requests,
                hits: l.hits,
                misses: l.misses,
                compiles: l.compiles,
                batched_rows: l.batched_rows,
                queue_wait_us: l.queue_wait_us,
                service_us: l.service_us,
            })
            .collect();
        let workers = shared.worker_stats.lock().expect("stats poisoned").clone();
        let (queue_wait_us, service_us) = *shared.global_hists.lock().expect("hists poisoned");
        ServeLedgers {
            tenants,
            batches: workers.iter().map(|w: &WorkerStat| w.batches).sum(),
            batched_rows: workers.iter().map(|w: &WorkerStat| w.rows).sum(),
            workers,
            cache: shared.cache.snapshot(),
            blocked_submits: shared.blocked_submits.load(Ordering::Relaxed),
            queue_wait_us,
            service_us,
        }
    }
}

impl ServerClient {
    /// Submits `field` for evaluation on `problem`, blocking while the
    /// queue is full (backpressure). Returns a [`Ticket`] to wait on.
    ///
    /// # Panics
    /// Panics when called after [`PlanServer::shutdown`].
    pub fn submit(&self, tenant: usize, problem: &Arc<Problem>, field: DgField) -> Ticket {
        let key = PlanKey::new(
            &problem.mesh,
            &problem.grid,
            problem.degree,
            &self.shared.compile,
        );
        let (tx, rx) = mpsc::channel();
        let pending = Pending {
            tenant,
            key,
            problem: problem.clone(),
            field,
            enqueued: Instant::now(),
            reply: tx,
        };
        let mut state = self.shared.state.lock().expect("queue poisoned");
        while state.queue.len() >= self.shared.capacity && !state.closed {
            self.shared.blocked_submits.fetch_add(1, Ordering::Relaxed);
            state = self.shared.space.wait(state).expect("queue poisoned");
        }
        assert!(!state.closed, "submit after server shutdown");
        state.queue.push_back(pending);
        drop(state);
        self.shared.work.notify_one();
        Ticket { rx }
    }
}

/// Pops the queue head plus every same-key request (up to `max_batch`), or
/// `None` when the queue is closed and drained.
fn next_batch(shared: &Shared) -> Option<Vec<Pending>> {
    let mut state = shared.state.lock().expect("queue poisoned");
    loop {
        if let Some(head) = state.queue.pop_front() {
            let key = head.key;
            let mut batch = vec![head];
            let mut i = 0;
            while i < state.queue.len() && batch.len() < shared.max_batch {
                if state.queue[i].key == key {
                    batch.push(state.queue.remove(i).expect("index in bounds"));
                } else {
                    i += 1;
                }
            }
            shared.space.notify_all();
            return Some(batch);
        }
        if state.closed {
            return None;
        }
        state = shared.work.wait(state).expect("queue poisoned");
    }
}

fn worker_loop(shared: &Shared, worker: usize) {
    while let Some(batch) = next_batch(shared) {
        let started = Instant::now();
        let leader = &batch[0];
        let problem = leader.problem.clone();
        let compile_opts = shared.compile;
        // Delta-aware lookup: a mesh-edit miss patches the resident
        // sibling plan instead of recompiling from scratch.
        let (plan, outcome) = shared.cache.get_or_patch(
            leader.key,
            &problem.mesh,
            &problem.grid,
            &compile_opts,
            || EvalPlan::compile(&problem.mesh, &problem.grid, problem.degree, &compile_opts),
        );
        let fields: Vec<DgField> = batch.iter().map(|p| p.field.clone()).collect();
        let solutions = plan.apply_many(&fields, &shared.apply);
        let batch_size = batch.len();
        let mut batch_metrics = Metrics::default();
        let mut batch_rows = 0u64;
        {
            let mut ledgers = shared.ledgers.lock().expect("ledgers poisoned");
            let mut hists = shared.global_hists.lock().expect("hists poisoned");
            for (i, (pending, solution)) in batch.iter().zip(solutions).enumerate() {
                let queue_wait_us = (started - pending.enqueued).as_micros() as u64;
                let service_us = pending.enqueued.elapsed().as_micros() as u64;
                // The lookup outcome belongs to the batch leader; coalesced
                // followers rode a plan that was resolved for them.
                let outcome_i = if i == 0 { outcome } else { Outcome::Hit };
                let rows = solution.values.len() as u64;
                batch_rows += rows;
                batch_metrics.merge(&solution.metrics);
                if let Some(ledger) = ledgers.get_mut(pending.tenant) {
                    ledger.requests += 1;
                    ledger.batched_rows += rows;
                    match outcome_i {
                        Outcome::Compiled => {
                            ledger.misses += 1;
                            ledger.compiles += 1;
                        }
                        // Disk revives, sibling patches, and single-flight
                        // rides answer from a plan the tenant did not pay
                        // a full compile for.
                        Outcome::Hit | Outcome::Waited | Outcome::DiskLoad | Outcome::Patched => {
                            ledger.hits += 1
                        }
                    }
                    ledger.queue_wait_us.record(queue_wait_us);
                    ledger.service_us.record(service_us);
                }
                hists.0.record(queue_wait_us);
                hists.1.record(service_us);
                // A dropped ticket just means the client stopped caring.
                let _ = pending.reply.send(Response {
                    values: solution.values,
                    queue_wait_us,
                    service_us,
                    outcome: outcome_i,
                    batch_size,
                });
            }
        }
        let mut stats = shared.worker_stats.lock().expect("stats poisoned");
        let stat = &mut stats[worker];
        stat.busy_ns += started.elapsed().as_nanos() as u64;
        stat.batches += 1;
        stat.rows += batch_rows;
        stat.metrics.merge(&batch_metrics);
    }
}
