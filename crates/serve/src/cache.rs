//! The concurrent plan cache: sharded by key digest, LRU-evicting under a
//! byte budget, with single-flight compilation.
//!
//! # Single flight
//!
//! A cold key costs a full plan compile — the 27 s discovery pass at paper
//! scale. When K requesters race on the same cold key, the first to insert
//! the in-flight marker becomes the *leader* and compiles (or revives the
//! plan from the [`DiskTier`]); the other K−1 become *followers* and block
//! on the marker's condvar, outside any shard lock. Everyone receives the
//! same `Arc<EvalPlan>`, so results are bitwise identical to a fresh
//! compile by construction and the compile runs exactly once.
//!
//! # Sharding and eviction
//!
//! Keys map to one of N shards by `digest % N`; each shard is an
//! independent mutex around a hash map, so lookups for different meshes
//! never contend and the compile itself always runs unlocked. The byte
//! budget (plan CSR bytes, the same accounting as
//! [`PlanStats::bytes`](ustencil_core::PlanStats)) is split evenly across
//! shards; when a shard exceeds its slice, least-recently-used *ready*
//! entries are evicted — in-flight entries and the entry just produced are
//! never victims, so a hot insert cannot evict itself. Evicted plans are
//! spilled to the disk tier (when configured) before being dropped, which
//! is what makes a later miss a cheap revive instead of a recompile.
//!
//! # Delta revalidation
//!
//! A mesh edit changes the [`PlanKey`] content hashes, so the edited
//! problem is a *miss* — but most of the old plan's rows are still exactly
//! right. [`PlanCache::get_or_patch`] exploits that: each produced entry
//! retains its [`Origin`] (the mesh/grid `Arc`s it was compiled for), and
//! a leader that misses first looks for a resident *sibling* — same
//! kernel, degree, and layout, different content — diffs the two problems
//! ([`DirtySet::diff`]) and splices in only the dirty-footprint rows
//! ([`EvalPlan::patched`]). The cache entry is revalidated at delta cost
//! instead of evict-and-recompile cost; followers blocked on the flight
//! share the patched plan like any other.

use crate::disk::DiskTier;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use ustencil_core::ComputationGrid;
use ustencil_mesh::TriMesh;
use ustencil_plan::{CompileOptions, DirtySet, EvalPlan, PlanKey};

/// Configuration of a [`PlanCache`].
#[derive(Debug)]
pub struct CacheConfig {
    /// Number of independent shards (default 8; clamped to ≥ 1).
    pub shards: usize,
    /// Total resident-plan byte budget across all shards; 0 = unbounded.
    pub byte_budget: u64,
    /// Optional warm-start disk tier: misses try it before compiling, and
    /// evictions spill to it.
    pub disk: Option<DiskTier>,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            shards: 8,
            byte_budget: 0,
            disk: None,
        }
    }
}

/// How a [`PlanCache::get_or_compile`] / [`PlanCache::get_or_patch`] call
/// was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The plan was resident in the memory tier.
    Hit,
    /// Another requester was already producing the plan; this call blocked
    /// on the in-flight entry and shared its result.
    Waited,
    /// This call led the production and revived the plan from disk.
    DiskLoad,
    /// This call led the production and patched a resident sibling plan
    /// (same kernel/degree/layout, edited mesh) instead of compiling.
    Patched,
    /// This call led the production and compiled the plan.
    Compiled,
}

/// The problem a resident plan was compiled for, retained alongside the
/// plan so a later request for an *edited* mesh at the same kernel can be
/// served by [`EvalPlan::patched`] instead of a full compile. The `Arc`s
/// come straight from the request's catalog entry, so retention costs two
/// reference counts, not a mesh copy.
#[derive(Debug, Clone)]
pub struct Origin {
    /// The mesh the plan was compiled over.
    pub mesh: Arc<TriMesh>,
    /// The grid the plan's rows evaluate at.
    pub grid: Arc<ComputationGrid>,
}

/// Monotone counters of a cache's lifetime, plus the current resident size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheSnapshot {
    /// Lookups answered from the memory tier.
    pub hits: u64,
    /// Lookups that found no resident or in-flight plan (the leaders).
    pub misses: u64,
    /// Plans compiled (≤ misses).
    pub compiles: u64,
    /// Lookups that blocked on another requester's in-flight production.
    pub single_flight_waits: u64,
    /// Plans revived from the disk tier instead of compiled.
    pub disk_loads: u64,
    /// Plans produced by patching a resident sibling (an edited-mesh
    /// revalidation) instead of compiling.
    pub patches: u64,
    /// Plans evicted under the byte budget.
    pub evictions: u64,
    /// Bytes of plan CSR data currently resident.
    pub resident_bytes: u64,
}

/// The in-flight marker a leader publishes while producing a plan.
/// Followers block on the condvar; `complete` fills the slot and wakes them.
struct Flight {
    done: Mutex<Option<Arc<EvalPlan>>>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Self {
        Self {
            done: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn wait(&self) -> Arc<EvalPlan> {
        let mut slot = self.done.lock().expect("flight poisoned");
        while slot.is_none() {
            slot = self.cv.wait(slot).expect("flight poisoned");
        }
        slot.as_ref().expect("checked above").clone()
    }

    fn complete(&self, plan: Arc<EvalPlan>) {
        *self.done.lock().expect("flight poisoned") = Some(plan);
        self.cv.notify_all();
    }
}

enum Slot {
    InFlight(Arc<Flight>),
    Ready(Arc<EvalPlan>),
}

/// What the lookup front half resolved to.
enum Lookup {
    /// Resident plan: a hit.
    Ready(Arc<EvalPlan>),
    /// Someone else is producing it: block on their flight.
    Follow(Arc<Flight>),
    /// This caller inserted the in-flight marker and must produce.
    Lead(Arc<Flight>),
}

struct Entry {
    slot: Slot,
    /// Global LRU clock value of the last touch.
    last_used: u64,
    /// CSR bytes (0 while in flight).
    bytes: u64,
    /// The problem the plan was compiled for, when the producer supplied
    /// it ([`PlanCache::get_or_patch`]); `None` entries can serve hits but
    /// never act as a patch base.
    origin: Option<Arc<Origin>>,
}

#[derive(Default)]
struct Shard {
    map: HashMap<PlanKey, Entry>,
    resident_bytes: u64,
}

/// A sharded, byte-budgeted, single-flight cache of compiled plans. All
/// methods take `&self`; the cache is meant to be shared across threads
/// behind an `Arc`.
pub struct PlanCache {
    shards: Vec<Mutex<Shard>>,
    budget_per_shard: u64,
    disk: Option<DiskTier>,
    /// Global LRU clock: every lookup ticks it once.
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    compiles: AtomicU64,
    waits: AtomicU64,
    disk_loads: AtomicU64,
    patches: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("shards", &self.shards.len())
            .field("budget_per_shard", &self.budget_per_shard)
            .field("snapshot", &self.snapshot())
            .finish()
    }
}

impl PlanCache {
    /// An empty cache under `config`.
    pub fn new(config: CacheConfig) -> Self {
        let n = config.shards.max(1);
        Self {
            shards: (0..n).map(|_| Mutex::new(Shard::default())).collect(),
            // Integer split: a budget smaller than the shard count rounds to
            // 0 per shard, which would read as "unbounded" — clamp up to 1
            // so a tiny budget stays an aggressive evictor instead.
            budget_per_shard: if config.byte_budget == 0 {
                0
            } else {
                (config.byte_budget / n as u64).max(1)
            },
            disk: config.disk,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            compiles: AtomicU64::new(0),
            waits: AtomicU64::new(0),
            disk_loads: AtomicU64::new(0),
            patches: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The plan for `key`, from (in preference order) the memory tier, an
    /// in-flight production, the disk tier, or `compile`. At most one
    /// caller per key runs `compile` at a time; concurrent requesters for
    /// the same cold key block and share the leader's result.
    ///
    /// `compile` runs without any cache lock held, so long compiles never
    /// stall lookups for other keys (or even other plans in this shard).
    pub fn get_or_compile(
        &self,
        key: PlanKey,
        compile: impl FnOnce() -> EvalPlan,
    ) -> (Arc<EvalPlan>, Outcome) {
        match self.lookup_or_lead(&key) {
            Lookup::Ready(plan) => (plan, Outcome::Hit),
            Lookup::Follow(flight) => self.follow(&flight),
            Lookup::Lead(flight) => {
                self.produce(key, flight, None, || (compile(), Outcome::Compiled))
            }
        }
    }

    /// Delta-aware variant of [`get_or_compile`](Self::get_or_compile): the
    /// leader first tries to *patch* a resident sibling plan — one compiled
    /// at the same kernel/degree/layout for an earlier revision of the mesh
    /// ([`EvalPlan::patched`]) — and only compiles from scratch when no
    /// sibling exists or the edit changed the kernel scale. Either way the
    /// produced entry retains `(mesh, grid)` as its [`Origin`], so it can
    /// serve as the patch base for the *next* edit. Followers share the
    /// patched plan exactly as they share a compiled one.
    ///
    /// Lookup order: memory tier, in-flight production, disk tier, sibling
    /// patch, `compile`.
    pub fn get_or_patch(
        &self,
        key: PlanKey,
        mesh: &Arc<TriMesh>,
        grid: &Arc<ComputationGrid>,
        options: &CompileOptions,
        compile: impl FnOnce() -> EvalPlan,
    ) -> (Arc<EvalPlan>, Outcome) {
        match self.lookup_or_lead(&key) {
            Lookup::Ready(plan) => (plan, Outcome::Hit),
            Lookup::Follow(flight) => self.follow(&flight),
            Lookup::Lead(flight) => {
                let origin = Arc::new(Origin {
                    mesh: mesh.clone(),
                    grid: grid.clone(),
                });
                self.produce(key, flight, Some(origin), || {
                    match self.patch_from_sibling(&key, mesh, grid, options) {
                        Some(plan) => (plan, Outcome::Patched),
                        None => (compile(), Outcome::Compiled),
                    }
                })
            }
        }
    }

    /// The shared lookup front half: hit, follow an in-flight leader, or
    /// become the leader by publishing an in-flight marker.
    fn lookup_or_lead(&self, key: &PlanKey) -> Lookup {
        let now = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let shard = &self.shards[(key.digest() as usize) % self.shards.len()];
        let mut guard = shard.lock().expect("shard poisoned");
        match guard.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = now;
                match &entry.slot {
                    Slot::Ready(plan) => {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        Lookup::Ready(plan.clone())
                    }
                    Slot::InFlight(f) => Lookup::Follow(f.clone()),
                }
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                let f = Arc::new(Flight::new());
                guard.map.insert(
                    *key,
                    Entry {
                        slot: Slot::InFlight(f.clone()),
                        last_used: now,
                        bytes: 0,
                        origin: None,
                    },
                );
                Lookup::Lead(f)
            }
        }
    }

    /// Follower path: block outside the shard lock until the leader
    /// publishes the plan.
    fn follow(&self, flight: &Flight) -> (Arc<EvalPlan>, Outcome) {
        self.waits.fetch_add(1, Ordering::Relaxed);
        (flight.wait(), Outcome::Waited)
    }

    /// Leader path: revive from disk or run `make` (compile, or sibling
    /// patch then compile), publish into the shard with its origin, evict
    /// down to budget, wake followers. `make` runs without any lock held.
    fn produce(
        &self,
        key: PlanKey,
        flight: Arc<Flight>,
        origin: Option<Arc<Origin>>,
        make: impl FnOnce() -> (EvalPlan, Outcome),
    ) -> (Arc<EvalPlan>, Outcome) {
        let (plan, outcome) = match self.disk.as_ref().and_then(|d| d.load(&key)) {
            Some(p) => {
                self.disk_loads.fetch_add(1, Ordering::Relaxed);
                (Arc::new(p), Outcome::DiskLoad)
            }
            None => {
                let (plan, outcome) = make();
                match outcome {
                    Outcome::Patched => self.patches.fetch_add(1, Ordering::Relaxed),
                    _ => self.compiles.fetch_add(1, Ordering::Relaxed),
                };
                (Arc::new(plan), outcome)
            }
        };
        let bytes = plan.bytes() as u64;
        {
            let shard = &self.shards[(key.digest() as usize) % self.shards.len()];
            let mut guard = shard.lock().expect("shard poisoned");
            let entry = guard.map.get_mut(&key).expect("in-flight entry present");
            entry.slot = Slot::Ready(plan.clone());
            entry.bytes = bytes;
            entry.origin = origin;
            guard.resident_bytes += bytes;
            self.evict_over_budget(&mut guard, &key);
        }
        // Publish only after the shard state is consistent; followers that
        // wake will find a Ready entry on their next lookup too.
        flight.complete(plan.clone());
        (plan, outcome)
    }

    /// Scans for the most recently used resident plan that shares `key`'s
    /// kernel half (degree, smoothness, `h_factor`, layout) and retained
    /// its origin, diffs that origin against the requested problem, and
    /// patches. `None` when no such sibling exists or the patch is
    /// rejected (e.g. the edit changed the longest edge and with it `h`) —
    /// the caller falls back to a full compile.
    fn patch_from_sibling(
        &self,
        key: &PlanKey,
        mesh: &TriMesh,
        grid: &ComputationGrid,
        options: &CompileOptions,
    ) -> Option<EvalPlan> {
        let mut best: Option<(u64, Arc<EvalPlan>, Arc<Origin>)> = None;
        for shard in &self.shards {
            let guard = shard.lock().expect("shard poisoned");
            for (k, entry) in &guard.map {
                let kernel_match = k.degree == key.degree
                    && k.smoothness == key.smoothness
                    && k.h_factor_bits == key.h_factor_bits
                    && k.layout == key.layout
                    && k != key;
                if !kernel_match {
                    continue;
                }
                if let (Slot::Ready(plan), Some(origin)) = (&entry.slot, &entry.origin) {
                    if best.as_ref().is_none_or(|(lu, _, _)| entry.last_used > *lu) {
                        best = Some((entry.last_used, plan.clone(), origin.clone()));
                    }
                }
            }
        }
        // Diff and patch outside every shard lock: only the two Arcs were
        // taken from the scan.
        let (_, base, origin) = best?;
        let dirty = DirtySet::diff(&origin.mesh, &origin.grid, mesh, grid);
        base.patched(mesh, grid, &dirty, options)
            .ok()
            .map(|(plan, _)| plan)
    }

    /// Evicts least-recently-used ready entries until the shard fits its
    /// budget slice. `keep` (the entry just produced) and in-flight entries
    /// are never victims, so the shard may transiently exceed the budget by
    /// one resident plan — the alternative, evicting what was just
    /// produced, would livelock a working set of one.
    fn evict_over_budget(&self, shard: &mut Shard, keep: &PlanKey) {
        if self.budget_per_shard == 0 {
            return;
        }
        while shard.resident_bytes > self.budget_per_shard {
            let victim = shard
                .map
                .iter()
                .filter(|(k, e)| *k != keep && matches!(e.slot, Slot::Ready(_)))
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            let Some(victim) = victim else { break };
            let entry = shard.map.remove(&victim).expect("victim just found");
            shard.resident_bytes -= entry.bytes;
            self.evictions.fetch_add(1, Ordering::Relaxed);
            if let (Some(disk), Slot::Ready(plan)) = (self.disk.as_ref(), &entry.slot) {
                // Spill-on-evict is best-effort: a failed write only costs
                // a recompile later.
                let _ = disk.store(&victim, plan);
            }
        }
    }

    /// Point-in-time counters and resident size.
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            compiles: self.compiles.load(Ordering::Relaxed),
            single_flight_waits: self.waits.load(Ordering::Relaxed),
            disk_loads: self.disk_loads.load(Ordering::Relaxed),
            patches: self.patches.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident_bytes: self
                .shards
                .iter()
                .map(|s| s.lock().expect("shard poisoned").resident_bytes)
                .sum(),
        }
    }

    /// Number of resident (ready) plans across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .expect("shard poisoned")
                    .map
                    .values()
                    .filter(|e| matches!(e.slot, Slot::Ready(_)))
                    .count()
            })
            .sum()
    }

    /// Whether no plan is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured disk tier, if any.
    pub fn disk(&self) -> Option<&DiskTier> {
        self.disk.as_ref()
    }
}
