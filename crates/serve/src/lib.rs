//! Multi-tenant plan-cache service: the serving layer over `ustencil-plan`.
//!
//! The paper's economics are compile-once/apply-many: an
//! [`EvalPlan`](ustencil_plan::EvalPlan) costs seconds to compile and
//! milliseconds to apply. A production deployment — many clients querying
//! fields over a shared mesh catalog — therefore lives or dies on never
//! compiling the same plan twice, and on batching the applies it does pay
//! for. This crate is that layer, in three pieces:
//!
//! * [`PlanCache`] — a sharded concurrent cache keyed by
//!   [`PlanKey`](ustencil_plan::PlanKey) (content hashes, so same-shape
//!   different-content meshes can never alias). Cold keys compile under
//!   **single flight**: one compile per key no matter how many requesters
//!   race, the rest block and share the result. A byte budget drives LRU
//!   eviction, and an optional [`DiskTier`] makes eviction a spill and the
//!   next miss a cheap revive (`ustencil-plan/v2` JSON on disk).
//! * [`PlanServer`] — worker threads behind a bounded submission queue
//!   (blocking admission = backpressure). Queued requests against the same
//!   plan coalesce into one
//!   [`apply_many`](ustencil_plan::EvalPlan::apply_many) sweep. Every
//!   request is timed into per-tenant [`Hist64`](ustencil_trace::Hist64)
//!   ledgers surfaced as
//!   [`ServeStats`](ustencil_core::ServeStats) in `RunRecord` JSON.
//! * [`traffic`] — the deterministic zipf traffic generator behind
//!   `reproduce serve`, driving cached and naive-per-request-compile modes
//!   over the same seeded request stream for a side-by-side comparison.
//!
//! Correctness stance: batching and caching change *when* work happens,
//! never *what* is computed — every requester of a key receives the same
//! shared plan, and a coalesced `apply_many` is bit-identical to separate
//! applies (unit-tested in `tests/single_flight.rs`).

#![deny(missing_docs)]

mod cache;
mod disk;
mod server;
pub mod traffic;

pub use cache::{CacheConfig, CacheSnapshot, Origin, Outcome, PlanCache};
pub use disk::DiskTier;
pub use server::{
    PlanServer, Problem, Response, ServeLedgers, ServerClient, ServerConfig, Ticket, WorkerStat,
};
pub use traffic::{TrafficConfig, TrafficOutcome, SCHEME_LABEL};
