//! Deterministic synthetic traffic: N client threads replaying a seeded
//! zipf-distributed request stream over a fixture catalog, against either
//! the cached service or a naive per-request compile baseline.
//!
//! Determinism is end to end: the catalog meshes are seeded, each client's
//! RNG is derived from `(seed, client)` with SplitMix64, and the zipf
//! sampler uses platform-independent transcendental kernels (see the
//! `rand` shim), so a `(config, seed)` pair replays the same request
//! sequence everywhere. What *is* timing-dependent — which requests
//! coalesce into a batch, which lookups ride single-flight — changes only
//! service latency, never any returned value: every request for a key gets
//! the same shared plan, and `apply_many` of a batch is bit-identical to
//! separate applies.

use crate::cache::{CacheConfig, PlanCache};
use crate::disk::DiskTier;
use crate::server::{PlanServer, Problem, ServerConfig, WorkerStat};
use rand::distributions::Zipf;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Instant;
use ustencil_core::report::PatchRecord;
use ustencil_core::{ComputationGrid, Metrics, RunRecord, ServeStats, TenantLedger};
use ustencil_dg::project_l2;
use ustencil_mesh::{generate_mesh, MeshClass, TriMesh};
use ustencil_plan::{ApplyOptions, CompileOptions, EvalPlan};
use ustencil_trace::{Hist64, Tracer};

/// Scheme label serve runs carry in `RunRecord` JSON.
pub const SCHEME_LABEL: &str = "serve";

/// Configuration of a synthetic traffic run.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Client threads (default 8).
    pub clients: usize,
    /// Total requests across all clients (default 200).
    pub requests: usize,
    /// Master seed: catalog meshes, client RNGs, zipf draws.
    pub seed: u64,
    /// Distinct meshes in the fixture catalog (default 6).
    pub catalog: usize,
    /// Target triangles per catalog mesh (default 600).
    pub mesh_size: usize,
    /// Field polynomial degree (default 1).
    pub degree: usize,
    /// Zipf popularity exponent over the catalog (default 1.1).
    pub zipf_s: f64,
    /// Cache byte budget, 0 = unbounded (default 0).
    pub byte_budget: u64,
    /// Server worker threads (default 2).
    pub workers: usize,
    /// Bounded queue capacity (default 64).
    pub queue_capacity: usize,
    /// Coalescing cap per batch (default 32).
    pub max_batch: usize,
    /// Warm-start disk tier directory (default none).
    pub disk_dir: Option<PathBuf>,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        Self {
            clients: 8,
            requests: 200,
            seed: 42,
            catalog: 6,
            mesh_size: 600,
            degree: 1,
            zipf_s: 1.1,
            byte_budget: 0,
            workers: 2,
            queue_capacity: 64,
            max_batch: 32,
            disk_dir: None,
        }
    }
}

/// Everything a traffic run produced: the aggregate [`ServeStats`], the
/// `RunRecord` for report JSON, and the headline wall/throughput numbers.
#[derive(Debug, Clone)]
pub struct TrafficOutcome {
    /// Wall-clock milliseconds of the request-driving phase.
    pub wall_ms: f64,
    /// Requests per second over the driving phase.
    pub throughput_rps: f64,
    /// The aggregate service ledger.
    pub stats: ServeStats,
    /// The serve-scheme run record (spans, patches, and `serve` stats).
    pub record: RunRecord,
}

impl TrafficOutcome {
    /// Upper bound of quantile `q` of the service-latency distribution,
    /// microseconds.
    pub fn latency_us(&self, q: f64) -> u64 {
        self.stats.service_us.quantile_upper_bound(q)
    }
}

/// One catalog entry: a shared problem and the fields tenants evaluate on
/// it.
struct Fixture {
    problem: Arc<Problem>,
    field: ustencil_dg::DgField,
}

/// Derives a per-client RNG seed from the master seed (SplitMix64 step, so
/// adjacent client ids land far apart in seed space).
fn client_seed(seed: u64, client: usize) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((client as u64) << 16);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The widest kernel factor that keeps the stencil inside the unit square
/// (same guard the bench workloads use).
fn safe_h_factor(mesh: &TriMesh, p: usize) -> f64 {
    let width = (3 * p + 1) as f64 * mesh.max_edge_length();
    if width <= 0.98 {
        1.0
    } else {
        0.98 / width
    }
}

/// Builds the seeded fixture catalog: `catalog` meshes of `mesh_size`
/// triangles, one degree-`degree` field each. The compile width factor is
/// the tightest safe factor across the catalog, so every fixture shares
/// one `CompileOptions` (and plans differ only by content, never kernel).
fn build_catalog(cfg: &TrafficConfig) -> (Vec<Fixture>, CompileOptions) {
    let meshes: Vec<TriMesh> = (0..cfg.catalog)
        .map(|i| {
            generate_mesh(
                MeshClass::LowVariance,
                cfg.mesh_size,
                cfg.seed.wrapping_add(i as u64),
            )
        })
        .collect();
    let h_factor = meshes
        .iter()
        .map(|m| safe_h_factor(m, cfg.degree))
        .fold(1.0, f64::min);
    let compile = CompileOptions {
        h_factor,
        ..CompileOptions::default()
    };
    let fixtures = meshes
        .into_iter()
        .enumerate()
        .map(|(i, mesh)| {
            let shift = 0.1 * i as f64;
            let field = project_l2(
                &mesh,
                cfg.degree,
                move |x, y| {
                    let tau = std::f64::consts::TAU;
                    (tau * (x + shift)).sin() * (tau * y).cos() + 0.5
                },
                2,
            );
            let grid = ComputationGrid::quadrature_points(&mesh, cfg.degree);
            Fixture {
                problem: Arc::new(Problem {
                    mesh: Arc::new(mesh),
                    grid: Arc::new(grid),
                    degree: cfg.degree,
                }),
                field,
            }
        })
        .collect();
    (fixtures, compile)
}

/// Splits `total` requests across `clients`, front-loading the remainder.
fn requests_of(total: usize, clients: usize, client: usize) -> usize {
    total / clients + usize::from(client < total % clients)
}

/// Drives the cached service with zipf traffic and returns its ledger.
pub fn run_cached(cfg: &TrafficConfig) -> TrafficOutcome {
    let tracer = Tracer::new(true);
    let (fixtures, compile) = {
        let _span = tracer.span("serve.catalog");
        build_catalog(cfg)
    };
    let disk = cfg
        .disk_dir
        .as_ref()
        .map(|d| DiskTier::new(d).expect("disk tier directory"));
    let cache = PlanCache::new(CacheConfig {
        shards: 8,
        byte_budget: cfg.byte_budget,
        disk,
    });
    let server = PlanServer::start(
        cache,
        ServerConfig {
            workers: cfg.workers,
            queue_capacity: cfg.queue_capacity,
            max_batch: cfg.max_batch,
            compile,
            apply: ApplyOptions::default(),
        },
        cfg.clients,
    );
    let zipf = Zipf::new(fixtures.len(), cfg.zipf_s);
    let started = Instant::now();
    {
        let _span = tracer.span("serve.traffic");
        std::thread::scope(|s| {
            for client in 0..cfg.clients {
                let handle = server.client();
                let zipf = &zipf;
                let fixtures = &fixtures;
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(client_seed(cfg.seed, client));
                    for _ in 0..requests_of(cfg.requests, cfg.clients, client) {
                        let fixture = &fixtures[zipf.sample(&mut rng)];
                        let ticket = handle.submit(client, &fixture.problem, fixture.field.clone());
                        let response = ticket.wait();
                        debug_assert_eq!(
                            response.values.len(),
                            fixture.problem.grid.len(),
                            "response rows match the requested grid"
                        );
                    }
                });
            }
        });
    }
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let ledgers = {
        let _span = tracer.span("serve.drain");
        server.shutdown()
    };
    let stats = ServeStats {
        clients: cfg.clients as u64,
        requests: ledgers.tenants.iter().map(|t| t.requests).sum(),
        catalog: fixtures.len() as u64,
        hits: ledgers.cache.hits,
        misses: ledgers.cache.misses,
        compiles: ledgers.cache.compiles,
        single_flight_waits: ledgers.cache.single_flight_waits,
        disk_loads: ledgers.cache.disk_loads,
        patches: ledgers.cache.patches,
        evictions: ledgers.cache.evictions,
        batches: ledgers.batches,
        batched_rows: ledgers.batched_rows,
        cache_bytes: ledgers.cache.resident_bytes,
        queue_wait_us: ledgers.queue_wait_us,
        service_us: ledgers.service_us,
        tenants: ledgers.tenants.clone(),
    };
    let record = build_record(
        "serve/cached",
        &fixtures,
        &stats,
        &ledgers.workers,
        wall_ms,
        &tracer,
    );
    TrafficOutcome {
        wall_ms,
        throughput_rps: stats.requests as f64 / (wall_ms / 1e3),
        stats,
        record,
    }
}

/// Drives the identical request stream with no service at all: every
/// request compiles its own plan and applies it once. This is the paper's
/// "recompute the geometry every time" economics, and the baseline the
/// cached throughput is compared against.
pub fn run_naive(cfg: &TrafficConfig) -> TrafficOutcome {
    let tracer = Tracer::new(true);
    let (fixtures, compile) = {
        let _span = tracer.span("serve.catalog");
        build_catalog(cfg)
    };
    let zipf = Zipf::new(fixtures.len(), cfg.zipf_s);
    let ledgers: Mutex<Vec<(TenantLedger, WorkerStat)>> = Mutex::new(Vec::new());
    let started = Instant::now();
    {
        let _span = tracer.span("serve.traffic");
        std::thread::scope(|s| {
            for client in 0..cfg.clients {
                let zipf = &zipf;
                let fixtures = &fixtures;
                let compile = &compile;
                let ledgers = &ledgers;
                s.spawn(move || {
                    let mut ledger = TenantLedger {
                        tenant: client as u64,
                        requests: 0,
                        hits: 0,
                        misses: 0,
                        compiles: 0,
                        batched_rows: 0,
                        queue_wait_us: Hist64::new(),
                        service_us: Hist64::new(),
                    };
                    let mut stat = WorkerStat::default();
                    let mut rng = StdRng::seed_from_u64(client_seed(cfg.seed, client));
                    for _ in 0..requests_of(cfg.requests, cfg.clients, client) {
                        let fixture = &fixtures[zipf.sample(&mut rng)];
                        let t0 = Instant::now();
                        let plan = EvalPlan::compile(
                            &fixture.problem.mesh,
                            &fixture.problem.grid,
                            fixture.problem.degree,
                            compile,
                        );
                        let solution = plan.apply(&fixture.field);
                        let us = t0.elapsed().as_micros() as u64;
                        ledger.requests += 1;
                        ledger.misses += 1;
                        ledger.compiles += 1;
                        ledger.batched_rows += solution.values.len() as u64;
                        ledger.queue_wait_us.record(0);
                        ledger.service_us.record(us);
                        stat.busy_ns += t0.elapsed().as_nanos() as u64;
                        stat.batches += 1;
                        stat.rows += solution.values.len() as u64;
                        stat.metrics.merge(&solution.metrics);
                    }
                    ledgers
                        .lock()
                        .expect("ledgers poisoned")
                        .push((ledger, stat));
                });
            }
        });
    }
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let mut pairs = ledgers.into_inner().expect("ledgers poisoned");
    pairs.sort_by_key(|(l, _)| l.tenant);
    let (tenants, workers): (Vec<TenantLedger>, Vec<WorkerStat>) = pairs.into_iter().unzip();
    let mut queue_wait_us = Hist64::new();
    let mut service_us = Hist64::new();
    for t in &tenants {
        queue_wait_us.merge(&t.queue_wait_us);
        service_us.merge(&t.service_us);
    }
    let requests: u64 = tenants.iter().map(|t| t.requests).sum();
    let stats = ServeStats {
        clients: cfg.clients as u64,
        requests,
        catalog: fixtures.len() as u64,
        hits: 0,
        misses: requests,
        compiles: requests,
        single_flight_waits: 0,
        disk_loads: 0,
        patches: 0,
        evictions: 0,
        batches: workers.iter().map(|w| w.batches).sum(),
        batched_rows: workers.iter().map(|w| w.rows).sum(),
        cache_bytes: 0,
        queue_wait_us,
        service_us,
        tenants,
    };
    let record = build_record("serve/naive", &fixtures, &stats, &workers, wall_ms, &tracer);
    TrafficOutcome {
        wall_ms,
        throughput_rps: requests as f64 / (wall_ms / 1e3),
        stats,
        record,
    }
}

/// Assembles the serve-scheme [`RunRecord`]: spans from the run's tracer,
/// one patch per worker (or naive client), and the aggregate stats.
fn build_record(
    label: &str,
    fixtures: &[Fixture],
    stats: &ServeStats,
    workers: &[WorkerStat],
    wall_ms: f64,
    tracer: &Tracer,
) -> RunRecord {
    let mut metrics = Metrics::default();
    for w in workers {
        metrics.merge(&w.metrics);
    }
    RunRecord {
        label: label.to_string(),
        scheme: SCHEME_LABEL.to_string(),
        n_triangles: fixtures
            .iter()
            .map(|f| f.problem.mesh.n_triangles() as u64)
            .sum(),
        n_points: fixtures.iter().map(|f| f.problem.grid.len() as u64).sum(),
        wall_ms,
        metrics,
        spans: tracer.records(),
        patches: workers
            .iter()
            .map(|w| PatchRecord {
                wall_ns: w.busy_ns,
                elements: w.batches,
                points: w.rows,
                metrics: w.metrics,
            })
            .collect(),
        histograms: Vec::new(),
        device_sim: None,
        plan: None,
        locality: None,
        comms: Vec::new(),
        critical_path: None,
        serve: Some(stats.clone()),
        // Serve aggregates many per-plan applies with heterogeneous wall
        // shares; a single ISA record would misattribute, so none is kept.
        simd: None,
    }
}

/// One line of the config for log output, e.g.
/// `8 clients x 200 requests over 6 meshes (zipf s=1.1, seed 42)`.
pub fn describe(cfg: &TrafficConfig) -> String {
    format!(
        "{} clients x {} requests over {} meshes (zipf s={}, seed {})",
        cfg.clients, cfg.requests, cfg.catalog, cfg.zipf_s, cfg.seed
    )
}
