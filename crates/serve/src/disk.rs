//! The warm-start disk tier: evicted plans are spilled as `ustencil-plan/v2`
//! JSON documents and revived on the next miss, skipping the compile.
//!
//! Files are named by the [`PlanKey::digest`] (16 hex digits), so the tier
//! needs no index: lookup is one `read_to_string` on the derived path.
//! Writes go through a temp file + rename, so a crashed writer leaves at
//! worst a stale `.tmp`, never a half-written plan under a live name.
//!
//! Every failure mode — missing file, unreadable file, corrupt JSON, an old
//! `ustencil-plan/v1` document from a previous build — degrades to "no plan
//! here", which the cache answers by recompiling. A poisoned disk tier can
//! cost time, never correctness, and never a panic.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use ustencil_plan::{EvalPlan, PlanKey};

/// A directory of serialized plans keyed by [`PlanKey::digest`].
#[derive(Debug, Clone)]
pub struct DiskTier {
    dir: PathBuf,
}

impl DiskTier {
    /// Opens (creating if needed) a disk tier rooted at `dir`.
    pub fn new(dir: impl AsRef<Path>) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// The tier's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The on-disk path a key serializes to.
    pub fn path_of(&self, key: &PlanKey) -> PathBuf {
        self.dir.join(format!("{:016x}.plan.json", key.digest()))
    }

    /// Persists `plan` under `key`, atomically (temp file + rename).
    pub fn store(&self, key: &PlanKey, plan: &EvalPlan) -> io::Result<()> {
        let path = self.path_of(key);
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, plan.to_pretty_string())?;
        fs::rename(&tmp, &path)
    }

    /// Loads the plan stored under `key`, or `None` when there is none or
    /// the file does not parse as a current-format plan (corrupt, truncated,
    /// or written by an older serialization version). Unreadable files are
    /// removed so the next writer starts clean.
    pub fn load(&self, key: &PlanKey) -> Option<EvalPlan> {
        let path = self.path_of(key);
        let text = fs::read_to_string(&path).ok()?;
        match EvalPlan::from_json(&text) {
            Ok(plan) => Some(plan),
            Err(_) => {
                // Stale or corrupt: drop it rather than re-failing forever.
                let _ = fs::remove_file(&path);
                None
            }
        }
    }

    /// Number of plan files currently stored.
    pub fn len(&self) -> usize {
        fs::read_dir(&self.dir)
            .map(|it| {
                it.filter_map(Result::ok)
                    .filter(|e| {
                        e.path()
                            .file_name()
                            .and_then(|n| n.to_str())
                            .is_some_and(|n| n.ends_with(".plan.json"))
                    })
                    .count()
            })
            .unwrap_or(0)
    }

    /// Whether the tier holds no plans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
