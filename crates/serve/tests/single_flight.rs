//! Single-flight stress tests: K concurrent requesters for the same cold
//! key must trigger exactly one compile, and every requester's result must
//! be bitwise identical to a fresh compile.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use ustencil_core::ComputationGrid;
use ustencil_dg::project_l2;
use ustencil_mesh::{generate_mesh, MeshClass, TriMesh};
use ustencil_plan::{CompileOptions, EvalPlan, PlanKey};
use ustencil_serve::{CacheConfig, Outcome, PlanCache, PlanServer, Problem, ServerConfig};

fn fixture(seed: u64) -> (TriMesh, ComputationGrid, CompileOptions) {
    let mesh = generate_mesh(MeshClass::LowVariance, 150, seed);
    let grid = ComputationGrid::quadrature_points(&mesh, 1);
    let options = CompileOptions {
        h_factor: 0.5,
        parallel: false,
        ..CompileOptions::default()
    };
    (mesh, grid, options)
}

/// Two plans are the same operator if every CSR array matches bit for bit.
fn bitwise_equal(a: &EvalPlan, b: &EvalPlan) {
    assert_eq!(a.rows(), b.rows());
    assert_eq!(a.cols(), b.cols());
    assert!(a.weights_bits().eq(b.weights_bits()), "weights differ");
}

#[test]
fn k_requesters_one_compile_bitwise_identical() {
    let (mesh, grid, options) = fixture(11);
    let key = PlanKey::new(&mesh, &grid, 1, &options);
    let cache = PlanCache::new(CacheConfig::default());
    let probes = AtomicUsize::new(0);

    const K: usize = 16;
    let results: Vec<(Arc<EvalPlan>, Outcome)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..K)
            .map(|_| {
                s.spawn(|| {
                    cache.get_or_compile(key, || {
                        probes.fetch_add(1, Ordering::SeqCst);
                        EvalPlan::compile(&mesh, &grid, 1, &options)
                    })
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Exactly one compile ran, no matter how the K threads interleaved.
    assert_eq!(probes.load(Ordering::SeqCst), 1, "duplicated compile");
    let compiled = results
        .iter()
        .filter(|(_, o)| *o == Outcome::Compiled)
        .count();
    assert_eq!(compiled, 1, "exactly one leader");
    // Everyone else either waited on the flight or hit the finished entry.
    assert!(results
        .iter()
        .all(|(_, o)| matches!(o, Outcome::Compiled | Outcome::Waited | Outcome::Hit)));
    // All K received literally the same plan...
    for (plan, _) in &results {
        assert!(Arc::ptr_eq(plan, &results[0].0));
    }
    // ...and that plan is bitwise identical to an independent fresh compile.
    let fresh = EvalPlan::compile(&mesh, &grid, 1, &options);
    bitwise_equal(&results[0].0, &fresh);

    let snap = cache.snapshot();
    assert_eq!(snap.misses, 1);
    assert_eq!(snap.compiles, 1);
    assert_eq!(
        snap.hits + snap.single_flight_waits,
        (K - 1) as u64,
        "followers are waits or hits: {snap:?}"
    );
}

#[test]
fn concurrent_distinct_keys_compile_once_each() {
    const MESHES: usize = 4;
    const PER_KEY: usize = 6;
    let fixtures: Vec<_> = (0..MESHES as u64).map(fixture).collect();
    let keys: Vec<PlanKey> = fixtures
        .iter()
        .map(|(m, g, o)| PlanKey::new(m, g, 1, o))
        .collect();
    let cache = PlanCache::new(CacheConfig::default());
    let probes: Vec<AtomicUsize> = (0..MESHES).map(|_| AtomicUsize::new(0)).collect();

    std::thread::scope(|s| {
        for worker in 0..MESHES * PER_KEY {
            let i = worker % MESHES;
            let (mesh, grid, options) = &fixtures[i];
            let key = keys[i];
            let probe = &probes[i];
            let cache = &cache;
            s.spawn(move || {
                let (plan, _) = cache.get_or_compile(key, || {
                    probe.fetch_add(1, Ordering::SeqCst);
                    EvalPlan::compile(mesh, grid, 1, options)
                });
                assert_eq!(plan.rows(), grid.len());
            });
        }
    });

    for (i, probe) in probes.iter().enumerate() {
        assert_eq!(probe.load(Ordering::SeqCst), 1, "key {i} compiled twice");
    }
    let snap = cache.snapshot();
    assert_eq!(snap.compiles, MESHES as u64);
    assert_eq!(snap.misses, MESHES as u64);
    assert_eq!(cache.len(), MESHES);
}

#[test]
fn server_coalesced_answers_match_fresh_compile_apply() {
    let (mesh, grid, options) = fixture(23);
    let field = project_l2(&mesh, 1, |x, y| x * y + 0.25, 2);
    let problem = Arc::new(Problem {
        mesh: Arc::new(mesh),
        grid: Arc::new(grid),
        degree: 1,
    });

    let server = PlanServer::start(
        PlanCache::new(CacheConfig::default()),
        ServerConfig {
            workers: 2,
            compile: options,
            ..ServerConfig::default()
        },
        4,
    );
    const K: usize = 12;
    let responses: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..K)
            .map(|i| {
                let client = server.client();
                let problem = &problem;
                let field = field.clone();
                s.spawn(move || client.submit(i % 4, problem, field).wait())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let ledgers = server.shutdown();

    // However the requests batched, every answer is bitwise the fresh
    // compile-and-apply result.
    let fresh = EvalPlan::compile(&problem.mesh, &problem.grid, 1, &options).apply(&field);
    for r in &responses {
        assert_eq!(r.values.len(), fresh.values.len());
        assert!(
            r.values
                .iter()
                .zip(&fresh.values)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "batched answer differs from fresh apply"
        );
        assert!(r.batch_size >= 1);
    }
    // One key, so one compile however many batches ran.
    assert_eq!(ledgers.cache.compiles, 1);
    assert_eq!(ledgers.batched_rows, (K * fresh.values.len()) as u64);
    let requests: u64 = ledgers.tenants.iter().map(|t| t.requests).sum();
    assert_eq!(requests, K as u64);
    let compiles: u64 = ledgers.tenants.iter().map(|t| t.compiles).sum();
    assert_eq!(compiles, 1, "exactly one tenant paid the compile");
    // Latency histograms saw every request.
    assert_eq!(ledgers.service_us.count(), K as u64);
    assert_eq!(ledgers.queue_wait_us.count(), K as u64);
}
