//! Delta-revalidation tests: a mesh-edit miss must be served by patching
//! the resident sibling plan ([`Outcome::Patched`]) instead of a full
//! compile, followers must share the patched `Arc`, and the patched plan's
//! answers must agree with a fresh compile.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use ustencil_core::ComputationGrid;
use ustencil_dg::project_l2;
use ustencil_mesh::{displace_band, generate_mesh, MeshClass, TriMesh};
use ustencil_plan::{CompileOptions, EvalPlan, PlanKey};
use ustencil_serve::{CacheConfig, Outcome, PlanCache, PlanServer, Problem, ServerConfig};

fn fixture(seed: u64) -> (TriMesh, ComputationGrid, CompileOptions) {
    let mesh = generate_mesh(MeshClass::LowVariance, 200, seed);
    let grid = ComputationGrid::quadrature_points(&mesh, 1);
    let options = CompileOptions {
        h_factor: 0.5,
        parallel: false,
        ..CompileOptions::default()
    };
    (mesh, grid, options)
}

/// Displaced revision of a fixture mesh: same kernel (`max_edge` bits are
/// preserved by `displace_band`), different content hashes.
fn edited(mesh: &TriMesh) -> (Arc<TriMesh>, Arc<ComputationGrid>) {
    let moved = displace_band(mesh, 0.3, 0.7, 0.2, 17);
    assert_eq!(
        moved.max_edge_length().to_bits(),
        mesh.max_edge_length().to_bits(),
        "edit must preserve h for the patch path to engage"
    );
    let grid = ComputationGrid::quadrature_points(&moved, 1);
    (Arc::new(moved), Arc::new(grid))
}

#[test]
fn edited_mesh_miss_patches_the_resident_sibling() {
    let (mesh, grid, options) = fixture(31);
    let mesh = Arc::new(mesh);
    let grid = Arc::new(grid);
    let cache = PlanCache::new(CacheConfig::default());

    // Warm the cache with the base problem.
    let base_key = PlanKey::new(&mesh, &grid, 1, &options);
    let (_, outcome) = cache.get_or_patch(base_key, &mesh, &grid, &options, || {
        EvalPlan::compile(&mesh, &grid, 1, &options)
    });
    assert_eq!(outcome, Outcome::Compiled);

    // The edited mesh is a different key — but it must be produced by
    // patching, not by the compile closure.
    let (moved, moved_grid) = edited(&mesh);
    let edit_key = PlanKey::new(&moved, &moved_grid, 1, &options);
    assert_ne!(edit_key, base_key);
    let (plan, outcome) = cache.get_or_patch(edit_key, &moved, &moved_grid, &options, || {
        panic!("sibling patch must preempt the compile")
    });
    assert_eq!(outcome, Outcome::Patched);

    // The patched plan is bitwise the fresh compile for the edited mesh.
    let fresh = EvalPlan::compile(&moved, &moved_grid, 1, &options);
    assert_eq!(plan.rows(), fresh.rows());
    assert_eq!(plan.cols(), fresh.cols());
    assert!(plan.weights_bits().eq(fresh.weights_bits()));

    let snap = cache.snapshot();
    assert_eq!(snap.misses, 2);
    assert_eq!(snap.compiles, 1);
    assert_eq!(snap.patches, 1);
    // The leader-outcome invariant checkjson asserts on serve reports.
    assert_eq!(snap.misses, snap.compiles + snap.disk_loads + snap.patches);

    // Re-requesting the edited key is now a plain hit.
    let (again, outcome) = cache.get_or_patch(edit_key, &moved, &moved_grid, &options, || {
        panic!("resident entry must hit")
    });
    assert_eq!(outcome, Outcome::Hit);
    assert!(Arc::ptr_eq(&plan, &again));

    // And the patched entry retained its origin: a *second* edit patches
    // against it rather than recompiling.
    let twice = displace_band(&moved, 0.3, 0.7, 0.2, 23);
    let twice_grid = Arc::new(ComputationGrid::quadrature_points(&twice, 1));
    let twice = Arc::new(twice);
    let key2 = PlanKey::new(&twice, &twice_grid, 1, &options);
    let (_, outcome) = cache.get_or_patch(key2, &twice, &twice_grid, &options, || {
        panic!("chained edit must patch")
    });
    assert_eq!(outcome, Outcome::Patched);
}

#[test]
fn kernel_changing_edit_falls_back_to_compile() {
    let (mesh, grid, options) = fixture(37);
    let mesh = Arc::new(mesh);
    let grid = Arc::new(grid);
    let cache = PlanCache::new(CacheConfig::default());
    let base_key = PlanKey::new(&mesh, &grid, 1, &options);
    let _ = cache.get_or_patch(base_key, &mesh, &grid, &options, || {
        EvalPlan::compile(&mesh, &grid, 1, &options)
    });

    // A *different seed* mesh shares no geometry: the diff marks everything
    // dirty and — its max edge differing — the patch is rejected, so the
    // leader compiles. Served correctly either way, counted as a compile.
    let other = Arc::new(generate_mesh(MeshClass::LowVariance, 200, 99));
    let other_grid = Arc::new(ComputationGrid::quadrature_points(&other, 1));
    let compiled = AtomicUsize::new(0);
    let key = PlanKey::new(&other, &other_grid, 1, &options);
    let (plan, outcome) = cache.get_or_patch(key, &other, &other_grid, &options, || {
        compiled.fetch_add(1, Ordering::SeqCst);
        EvalPlan::compile(&other, &other_grid, 1, &options)
    });
    // Whether the patch was rejected (h changed) or applied (h happened to
    // match), the answer must equal the fresh compile.
    let fresh = EvalPlan::compile(&other, &other_grid, 1, &options);
    assert!(plan.weights_bits().eq(fresh.weights_bits()));
    if compiled.load(Ordering::SeqCst) == 1 {
        assert_eq!(outcome, Outcome::Compiled);
    } else {
        assert_eq!(outcome, Outcome::Patched);
    }
}

#[test]
fn concurrent_edit_requesters_share_one_patch() {
    let (mesh, grid, options) = fixture(41);
    let mesh = Arc::new(mesh);
    let grid = Arc::new(grid);
    let cache = PlanCache::new(CacheConfig::default());
    let base_key = PlanKey::new(&mesh, &grid, 1, &options);
    let _ = cache.get_or_patch(base_key, &mesh, &grid, &options, || {
        EvalPlan::compile(&mesh, &grid, 1, &options)
    });

    let (moved, moved_grid) = edited(&mesh);
    let edit_key = PlanKey::new(&moved, &moved_grid, 1, &options);
    const K: usize = 12;
    let results: Vec<(Arc<EvalPlan>, Outcome)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..K)
            .map(|_| {
                let (cache, moved, moved_grid, options) = (&cache, &moved, &moved_grid, &options);
                s.spawn(move || {
                    cache.get_or_patch(edit_key, moved, moved_grid, options, || {
                        panic!("patch leader must preempt every compile")
                    })
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Exactly one leader patched; everyone shares its Arc.
    let patched = results
        .iter()
        .filter(|(_, o)| *o == Outcome::Patched)
        .count();
    assert_eq!(patched, 1, "exactly one patch leader");
    assert!(results
        .iter()
        .all(|(_, o)| matches!(o, Outcome::Patched | Outcome::Waited | Outcome::Hit)));
    for (plan, _) in &results {
        assert!(Arc::ptr_eq(plan, &results[0].0));
    }
    assert_eq!(cache.snapshot().patches, 1);
}

#[test]
fn server_answers_after_mesh_edit_match_fresh_compile() {
    let (mesh, grid, options) = fixture(43);
    let base = Arc::new(Problem {
        mesh: Arc::new(mesh),
        grid: Arc::new(grid),
        degree: 1,
    });
    let (moved, moved_grid) = edited(&base.mesh);
    let edit = Arc::new(Problem {
        mesh: moved,
        grid: moved_grid,
        degree: 1,
    });
    let base_field = project_l2(&base.mesh, 1, |x, y| x * y + 0.25, 2);
    let edit_field = project_l2(&edit.mesh, 1, |x, y| x * y + 0.25, 2);

    let server = PlanServer::start(
        PlanCache::new(CacheConfig::default()),
        ServerConfig {
            workers: 2,
            compile: options,
            ..ServerConfig::default()
        },
        2,
    );
    let client = server.client();
    // Warm with the base problem, then hit the edited revision.
    client.submit(0, &base, base_field).wait();
    let response = client.submit(1, &edit, edit_field.clone()).wait();
    let ledgers = server.shutdown();

    let fresh = EvalPlan::compile(&edit.mesh, &edit.grid, 1, &options).apply(&edit_field);
    assert!(response
        .values
        .iter()
        .zip(&fresh.values)
        .all(|(a, b)| a.to_bits() == b.to_bits()));
    assert_eq!(response.outcome, Outcome::Patched);
    assert_eq!(
        ledgers.cache.compiles, 1,
        "edit revalidated, not recompiled"
    );
    assert_eq!(ledgers.cache.patches, 1);
    // Tenant accounting: the patch is a hit (the tenant did not pay a
    // compile), and the cache-level invariant holds.
    assert_eq!(ledgers.tenants[1].hits, 1);
    assert_eq!(
        ledgers.cache.misses,
        ledgers.cache.compiles + ledgers.cache.disk_loads + ledgers.cache.patches
    );
}
