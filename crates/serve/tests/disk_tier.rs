//! Disk-tier round-trip tests: evict → spill → reload → apply must be
//! bitwise identical, and corrupt or old-version files must degrade to a
//! recompile — never a panic.

use std::fs;
use std::path::PathBuf;
use ustencil_core::ComputationGrid;
use ustencil_dg::project_l2;
use ustencil_mesh::{generate_mesh, MeshClass, TriMesh};
use ustencil_plan::{CompileOptions, EvalPlan, PlanKey};
use ustencil_serve::{CacheConfig, DiskTier, Outcome, PlanCache};

/// A unique, pre-cleaned scratch directory per test (no tempfile crate in
/// the offline build).
fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ustencil-serve-{}-{test}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn fixture(seed: u64) -> (TriMesh, ComputationGrid, CompileOptions) {
    let mesh = generate_mesh(MeshClass::LowVariance, 140, seed);
    let grid = ComputationGrid::quadrature_points(&mesh, 1);
    let options = CompileOptions {
        h_factor: 0.5,
        parallel: false,
        ..CompileOptions::default()
    };
    (mesh, grid, options)
}

fn apply_bits(plan: &EvalPlan, mesh: &TriMesh) -> Vec<u64> {
    let field = project_l2(mesh, 1, |x, y| (x - 0.3) * y + 0.75, 2);
    plan.apply(&field)
        .values
        .iter()
        .map(|v| v.to_bits())
        .collect()
}

#[test]
fn evict_spill_reload_apply_is_bitwise_equal() {
    let dir = scratch("roundtrip");
    let (mesh_a, grid_a, options) = fixture(31);
    let (mesh_b, grid_b, _) = fixture(32);
    let key_a = PlanKey::new(&mesh_a, &grid_a, 1, &options);
    let key_b = PlanKey::new(&mesh_b, &grid_b, 1, &options);

    // One shard + a 1-byte budget: every insert evicts the previous
    // resident plan, spilling it to disk.
    let cache = PlanCache::new(CacheConfig {
        shards: 1,
        byte_budget: 1,
        disk: Some(DiskTier::new(&dir).expect("create disk tier")),
    });

    let (plan_a, outcome) =
        cache.get_or_compile(key_a, || EvalPlan::compile(&mesh_a, &grid_a, 1, &options));
    assert_eq!(outcome, Outcome::Compiled);
    let fresh_bits = apply_bits(&plan_a, &mesh_a);

    // Compiling B evicts A (the only other resident plan) to disk.
    let (_, outcome) =
        cache.get_or_compile(key_b, || EvalPlan::compile(&mesh_b, &grid_b, 1, &options));
    assert_eq!(outcome, Outcome::Compiled);
    let snap = cache.snapshot();
    assert_eq!(snap.evictions, 1, "budget of 1 byte must evict: {snap:?}");
    assert_eq!(cache.disk().expect("disk configured").len(), 1);

    // Re-requesting A revives it from disk — no recompile...
    let (revived, outcome) = cache.get_or_compile(key_a, || {
        panic!("disk revive must not recompile");
    });
    assert_eq!(outcome, Outcome::DiskLoad);
    // ...and the revived plan is operationally bitwise the original.
    assert_eq!(revived.rows(), plan_a.rows());
    assert_eq!(revived.cols(), plan_a.cols());
    assert!(revived.weights_bits().eq(plan_a.weights_bits()));
    assert_eq!(apply_bits(&revived, &mesh_a), fresh_bits);

    let snap = cache.snapshot();
    assert_eq!(snap.compiles, 2);
    assert_eq!(snap.disk_loads, 1);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_disk_file_degrades_to_recompile() {
    let dir = scratch("corrupt");
    let (mesh, grid, options) = fixture(41);
    let key = PlanKey::new(&mesh, &grid, 1, &options);
    let tier = DiskTier::new(&dir).expect("create disk tier");

    // Plant garbage where the plan would live.
    fs::write(tier.path_of(&key), b"{ not json at all").expect("write corrupt file");

    let cache = PlanCache::new(CacheConfig {
        shards: 1,
        byte_budget: 0,
        disk: Some(tier),
    });
    let (plan, outcome) =
        cache.get_or_compile(key, || EvalPlan::compile(&mesh, &grid, 1, &options));
    assert_eq!(outcome, Outcome::Compiled, "corrupt file must not satisfy");
    assert_eq!(plan.rows(), grid.len());
    // The unreadable file was removed so a later spill starts clean.
    assert_eq!(cache.disk().expect("disk configured").len(), 0);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn old_version_disk_file_degrades_to_recompile() {
    let dir = scratch("oldversion");
    let (mesh, grid, options) = fixture(43);
    let key = PlanKey::new(&mesh, &grid, 1, &options);
    let tier = DiskTier::new(&dir).expect("create disk tier");

    // A structurally valid document from a previous serialization era:
    // current-format JSON with the format tag rewound to v1.
    let plan = EvalPlan::compile(&mesh, &grid, 1, &options);
    tier.store(&key, &plan).expect("store plan");
    let path = tier.path_of(&key);
    let text = fs::read_to_string(&path).expect("read stored plan");
    assert!(text.contains("ustencil-plan/v2"), "format tag moved?");
    fs::write(&path, text.replace("ustencil-plan/v2", "ustencil-plan/v1"))
        .expect("write old-version file");

    let cache = PlanCache::new(CacheConfig {
        shards: 1,
        byte_budget: 0,
        disk: Some(tier),
    });
    let (plan, outcome) =
        cache.get_or_compile(key, || EvalPlan::compile(&mesh, &grid, 1, &options));
    assert_eq!(outcome, Outcome::Compiled, "v1 file must not satisfy");
    assert_eq!(plan.rows(), grid.len());
    assert_eq!(cache.disk().expect("disk configured").len(), 0);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn truncated_disk_file_degrades_to_recompile() {
    let dir = scratch("truncated");
    let (mesh, grid, options) = fixture(47);
    let key = PlanKey::new(&mesh, &grid, 1, &options);
    let tier = DiskTier::new(&dir).expect("create disk tier");

    let plan = EvalPlan::compile(&mesh, &grid, 1, &options);
    tier.store(&key, &plan).expect("store plan");
    let path = tier.path_of(&key);
    let text = fs::read_to_string(&path).expect("read stored plan");
    fs::write(&path, &text[..text.len() / 2]).expect("write truncated file");

    let cache = PlanCache::new(CacheConfig {
        shards: 1,
        byte_budget: 0,
        disk: Some(tier),
    });
    let (_, outcome) = cache.get_or_compile(key, || EvalPlan::compile(&mesh, &grid, 1, &options));
    assert_eq!(
        outcome,
        Outcome::Compiled,
        "truncated file must not satisfy"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn direct_disk_round_trip_preserves_weights() {
    let dir = scratch("direct");
    let (mesh, grid, options) = fixture(53);
    let key = PlanKey::new(&mesh, &grid, 1, &options);
    let tier = DiskTier::new(&dir).expect("create disk tier");
    assert!(tier.is_empty());

    let plan = EvalPlan::compile(&mesh, &grid, 1, &options);
    tier.store(&key, &plan).expect("store plan");
    assert_eq!(tier.len(), 1);
    let loaded = tier.load(&key).expect("load stored plan");
    assert!(loaded.weights_bits().eq(plan.weights_bits()));
    assert_eq!(apply_bits(&loaded, &mesh), apply_bits(&plan, &mesh));

    // A key never stored is simply absent.
    let (mesh2, grid2, _) = fixture(54);
    let other = PlanKey::new(&mesh2, &grid2, 1, &options);
    assert!(tier.load(&other).is_none());
    let _ = fs::remove_dir_all(&dir);
}
