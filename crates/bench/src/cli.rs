//! Strict argument parsing for the `reproduce` harness.
//!
//! Every flag is validated: an unknown `--flag` (or a typo like `--seeed`)
//! is an error with a usage message instead of a silent fallback to
//! defaults, and flags that need values fail loudly when the value is
//! missing or malformed.

use ustencil_core::SimdPolicy;

/// Usage text printed on parse errors and `--help`.
pub const USAGE: &str = "\
usage: reproduce <command> [options]

commands:
  table1 | fig8 | fig11 | fig12 | fig13 | fig14 | all
                      regenerate one exhibit (or every exhibit)
  profile             run an instrumented workload and print the phase /
                      load-imbalance / histogram report
  plan                compile an evaluation plan per mesh size, apply it to
                      --timesteps synthetic fields, and report the speedup
                      over direct per-element runs
  bench               run the standard benchmark fixtures (plan apply,
                      rank-sharded fig14, staged-vs-fused micro) and report
                      min-of-N walls; --record writes the versioned record
                      tools/bench_diff.py compares against a baseline
  serve               drive the multi-tenant plan-cache service with seeded
                      zipf traffic (--clients threads, --requests total) and
                      report throughput and p50/p99 latency, cached vs a
                      naive compile-per-request baseline
  amr                 run a dG field with a moving refinement/displacement
                      front for --frames frames: frame 0 compiles the plan,
                      every later frame revalidates it by incremental patch
                      and reports patch-vs-full-compile cost
  checkjson <path>    validate a --json report file (used by CI)

options:
  --sizes N,N,..      mesh sizes in triangles (default: the paper ladder;
                      for `bench`: halo-exchange size, plan-apply size,
                      default 16000,64000)
  --ranks N,N,..      run fig14 rank-sharded at each rank count (per-element
                      evaluation with explicit halo exchange; emits per-rank
                      comms ledgers into the JSON report); also the rank
                      ladder of the `bench` fixture (default 1,2,4,8)
  --seed S            mesh-generation seed (default 2013)
  --timesteps T       synthetic fields a `plan` run applies (default 8)
  --reps N            repetitions per `bench` fixture; the record keeps the
                      minimum wall (default 3)
  --clients N         client threads a `serve` run spawns (default 8)
  --requests M        total requests across a `serve` run's clients
                      (default 200)
  --frames F          frames an `amr` run advances the moving front
                      (default 4)
  --simd P            SIMD dispatch policy of the evaluation kernels:
                      auto (widest ISA the host supports, the default),
                      scalar (the bitwise-reproducible fallback), f64x4
                      (force AVX2+FMA), f64x8 (force AVX-512); a forced
                      width falls back to scalar when the host lacks it
  --full              lift the size ladder and degree caps to paper scale
  --json <path>       also write the structured RunReport as JSON
  --record <path>     write the `bench` record as JSON (versioned schema)
  --timeline <path>   write a Chrome trace-event timeline of a rank-sharded
                      fig14 run (load at ui.perfetto.dev)
  --help, -h          print this message";

/// Commands `reproduce` accepts.
pub const COMMANDS: [&str; 14] = [
    "table1",
    "fig8",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "all",
    "profile",
    "plan",
    "bench",
    "serve",
    "amr",
    "checkjson",
    "help",
];

/// Parsed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliOptions {
    /// The subcommand (default `"all"`).
    pub command: String,
    /// Explicit `--sizes` list, when given.
    pub sizes: Option<Vec<usize>>,
    /// Explicit `--ranks` list, when given (fig14 rank scaling).
    pub ranks: Option<Vec<usize>>,
    /// Mesh-generation seed.
    pub seed: u64,
    /// Synthetic timesteps a `plan` run applies.
    pub timesteps: usize,
    /// Repetitions per `bench` fixture (the record keeps the min wall).
    pub reps: usize,
    /// Client threads of a `serve` run.
    pub clients: usize,
    /// Total requests across a `serve` run's clients.
    pub requests: usize,
    /// Frames an `amr` run advances the moving front.
    pub frames: usize,
    /// SIMD dispatch policy of the evaluation kernels (`--simd`).
    pub simd: SimdPolicy,
    /// Whether `--full` was given.
    pub full: bool,
    /// `--json` output path, when given.
    pub json: Option<String>,
    /// `--record` output path of the `bench` command, when given.
    pub record: Option<String>,
    /// `--timeline` trace-event output path, when given.
    pub timeline: Option<String>,
    /// The positional path argument of `checkjson`.
    pub path_arg: Option<String>,
    /// Whether `--help`/`-h` was given.
    pub help: bool,
}

impl Default for CliOptions {
    fn default() -> Self {
        Self {
            command: "all".to_string(),
            sizes: None,
            ranks: None,
            seed: 2013,
            timesteps: 8,
            reps: 3,
            clients: 8,
            requests: 200,
            frames: 4,
            simd: SimdPolicy::Auto,
            full: false,
            json: None,
            record: None,
            timeline: None,
            path_arg: None,
            help: false,
        }
    }
}

/// Parses the argument list (without the program name). Errors carry a
/// human-readable message ending in the usage text.
pub fn parse_cli(args: &[String]) -> Result<CliOptions, String> {
    let mut opts = CliOptions::default();
    let mut positionals: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => opts.help = true,
            "--full" => opts.full = true,
            "--sizes" => {
                let list = value_of(&mut it, "--sizes")?;
                let sizes = list
                    .split(',')
                    .map(|s| {
                        s.parse::<usize>()
                            .map_err(|_| format!("--sizes entry '{s}' is not an integer"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                if sizes.is_empty() {
                    return Err("--sizes needs at least one size".to_string());
                }
                opts.sizes = Some(sizes);
            }
            "--ranks" => {
                let list = value_of(&mut it, "--ranks")?;
                let ranks =
                    list.split(',')
                        .map(|s| {
                            s.parse::<usize>().ok().filter(|&r| r > 0).ok_or_else(|| {
                                format!("--ranks entry '{s}' is not a positive integer")
                            })
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                if ranks.is_empty() {
                    return Err("--ranks needs at least one rank count".to_string());
                }
                opts.ranks = Some(ranks);
            }
            "--seed" => {
                let v = value_of(&mut it, "--seed")?;
                opts.seed = v
                    .parse()
                    .map_err(|_| format!("--seed value '{v}' is not an integer"))?;
            }
            "--timesteps" => {
                let v = value_of(&mut it, "--timesteps")?;
                opts.timesteps =
                    v.parse::<usize>().ok().filter(|&t| t > 0).ok_or_else(|| {
                        format!("--timesteps value '{v}' is not a positive integer")
                    })?;
            }
            "--reps" => {
                let v = value_of(&mut it, "--reps")?;
                opts.reps = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&r| r > 0)
                    .ok_or_else(|| format!("--reps value '{v}' is not a positive integer"))?;
            }
            "--clients" => {
                let v = value_of(&mut it, "--clients")?;
                opts.clients =
                    v.parse::<usize>().ok().filter(|&c| c > 0).ok_or_else(|| {
                        format!("--clients value '{v}' is not a positive integer")
                    })?;
            }
            "--requests" => {
                let v = value_of(&mut it, "--requests")?;
                opts.requests =
                    v.parse::<usize>().ok().filter(|&r| r > 0).ok_or_else(|| {
                        format!("--requests value '{v}' is not a positive integer")
                    })?;
            }
            "--frames" => {
                let v = value_of(&mut it, "--frames")?;
                opts.frames = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&f| f > 0)
                    .ok_or_else(|| format!("--frames value '{v}' is not a positive integer"))?;
            }
            "--simd" => {
                let v = value_of(&mut it, "--simd")?;
                opts.simd = SimdPolicy::from_label(v).ok_or_else(|| {
                    format!("--simd value '{v}' is not one of auto, scalar, f64x4, f64x8")
                })?;
            }
            "--json" => {
                opts.json = Some(value_of(&mut it, "--json")?.to_string());
            }
            "--record" => {
                opts.record = Some(value_of(&mut it, "--record")?.to_string());
            }
            "--timeline" => {
                opts.timeline = Some(value_of(&mut it, "--timeline")?.to_string());
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag '{flag}'\n\n{USAGE}"));
            }
            positional => positionals.push(positional.to_string()),
        }
    }

    let mut positionals = positionals.into_iter();
    if let Some(command) = positionals.next() {
        if !COMMANDS.contains(&command.as_str()) {
            return Err(format!("unknown command '{command}'\n\n{USAGE}"));
        }
        opts.command = command;
    }
    if opts.command == "help" {
        opts.help = true;
    }
    if opts.command == "checkjson" {
        opts.path_arg = Some(
            positionals
                .next()
                .ok_or_else(|| format!("checkjson needs a report path\n\n{USAGE}"))?,
        );
    }
    if let Some(extra) = positionals.next() {
        return Err(format!("unexpected argument '{extra}'\n\n{USAGE}"));
    }
    Ok(opts)
}

fn value_of<'a>(it: &mut std::slice::Iter<'a, String>, flag: &str) -> Result<&'a String, String> {
    match it.next() {
        Some(v) if !v.starts_with("--") => Ok(v),
        _ => Err(format!("{flag} needs a value\n\n{USAGE}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CliOptions, String> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        parse_cli(&owned)
    }

    #[test]
    fn defaults() {
        let opts = parse(&[]).unwrap();
        assert_eq!(opts, CliOptions::default());
    }

    #[test]
    fn full_flag_set() {
        let opts = parse(&[
            "table1",
            "--sizes",
            "1000,4000",
            "--seed",
            "7",
            "--json",
            "out.json",
        ])
        .unwrap();
        assert_eq!(opts.command, "table1");
        assert_eq!(opts.sizes, Some(vec![1000, 4000]));
        assert_eq!(opts.seed, 7);
        assert_eq!(opts.json.as_deref(), Some("out.json"));
    }

    #[test]
    fn misspelled_flag_is_rejected_with_usage() {
        // The historical bug: `--seeed 7` silently ran with the default
        // seed. It must now fail loudly.
        let err = parse(&["table1", "--seeed", "7"]).unwrap_err();
        assert!(err.contains("unknown flag '--seeed'"), "{err}");
        assert!(err.contains("usage:"), "error must include usage: {err}");
    }

    #[test]
    fn unknown_command_is_rejected() {
        let err = parse(&["tabel1"]).unwrap_err();
        assert!(err.contains("unknown command 'tabel1'"), "{err}");
    }

    #[test]
    fn missing_and_malformed_values_are_rejected() {
        assert!(parse(&["--sizes"]).unwrap_err().contains("needs a value"));
        assert!(parse(&["--sizes", "--full"])
            .unwrap_err()
            .contains("needs a value"));
        assert!(parse(&["--sizes", "12x"])
            .unwrap_err()
            .contains("not an integer"));
        assert!(parse(&["--seed", "abc"])
            .unwrap_err()
            .contains("not an integer"));
        assert!(parse(&["--timesteps", "0"])
            .unwrap_err()
            .contains("positive integer"));
        assert!(parse(&["--timesteps", "x"])
            .unwrap_err()
            .contains("positive integer"));
    }

    #[test]
    fn plan_command_with_timesteps() {
        let opts = parse(&["plan", "--timesteps", "16", "--sizes", "4000"]).unwrap();
        assert_eq!(opts.command, "plan");
        assert_eq!(opts.timesteps, 16);
        assert_eq!(opts.sizes, Some(vec![4000]));
        // Default when the flag is absent.
        assert_eq!(parse(&["plan"]).unwrap().timesteps, 8);
    }

    #[test]
    fn checkjson_takes_exactly_one_path() {
        let opts = parse(&["checkjson", "out.json"]).unwrap();
        assert_eq!(opts.path_arg.as_deref(), Some("out.json"));
        assert!(parse(&["checkjson"]).unwrap_err().contains("report path"));
        assert!(parse(&["checkjson", "a.json", "b.json"])
            .unwrap_err()
            .contains("unexpected argument"));
        // Other commands take no positionals at all.
        assert!(parse(&["table1", "extra"])
            .unwrap_err()
            .contains("unexpected argument 'extra'"));
    }

    #[test]
    fn ranks_flag() {
        let opts = parse(&["fig14", "--ranks", "1,2,4,8"]).unwrap();
        assert_eq!(opts.command, "fig14");
        assert_eq!(opts.ranks, Some(vec![1, 2, 4, 8]));
        assert_eq!(parse(&["fig14"]).unwrap().ranks, None);
        assert!(parse(&["--ranks"]).unwrap_err().contains("needs a value"));
        assert!(parse(&["--ranks", "0"])
            .unwrap_err()
            .contains("positive integer"));
        assert!(parse(&["--ranks", "2x"])
            .unwrap_err()
            .contains("positive integer"));
    }

    #[test]
    fn bench_flags() {
        let opts = parse(&[
            "bench",
            "--record",
            "BENCH.json",
            "--reps",
            "5",
            "--ranks",
            "1,2",
        ])
        .unwrap();
        assert_eq!(opts.command, "bench");
        assert_eq!(opts.record.as_deref(), Some("BENCH.json"));
        assert_eq!(opts.reps, 5);
        assert_eq!(opts.ranks, Some(vec![1, 2]));
        // Defaults when the flags are absent.
        let opts = parse(&["bench"]).unwrap();
        assert_eq!(opts.reps, 3);
        assert_eq!(opts.record, None);
        assert!(parse(&["bench", "--reps", "0"])
            .unwrap_err()
            .contains("positive integer"));
        assert!(parse(&["bench", "--record"])
            .unwrap_err()
            .contains("needs a value"));
    }

    #[test]
    fn serve_flags() {
        let opts = parse(&[
            "serve",
            "--clients",
            "12",
            "--requests",
            "400",
            "--seed",
            "9",
        ])
        .unwrap();
        assert_eq!(opts.command, "serve");
        assert_eq!(opts.clients, 12);
        assert_eq!(opts.requests, 400);
        assert_eq!(opts.seed, 9);
        // Defaults when the flags are absent.
        let opts = parse(&["serve"]).unwrap();
        assert_eq!(opts.clients, 8);
        assert_eq!(opts.requests, 200);
        assert!(parse(&["serve", "--clients", "0"])
            .unwrap_err()
            .contains("positive integer"));
        assert!(parse(&["serve", "--requests", "x"])
            .unwrap_err()
            .contains("positive integer"));
        assert!(parse(&["serve", "--clients"])
            .unwrap_err()
            .contains("needs a value"));
    }

    #[test]
    fn amr_flags() {
        let opts = parse(&["amr", "--frames", "6", "--sizes", "4000"]).unwrap();
        assert_eq!(opts.command, "amr");
        assert_eq!(opts.frames, 6);
        assert_eq!(opts.sizes, Some(vec![4000]));
        // Defaults when the flags are absent.
        assert_eq!(parse(&["amr"]).unwrap().frames, 4);
        assert!(parse(&["amr", "--frames", "0"])
            .unwrap_err()
            .contains("positive integer"));
        assert!(parse(&["amr", "--frames", "x"])
            .unwrap_err()
            .contains("positive integer"));
        assert!(parse(&["amr", "--frames"])
            .unwrap_err()
            .contains("needs a value"));
    }

    #[test]
    fn simd_flag() {
        use ustencil_core::SimdWidth;
        // Every label round-trips through the flag...
        for policy in SimdPolicy::ALL {
            let opts = parse(&["bench", "--simd", policy.label()]).unwrap();
            assert_eq!(opts.simd, policy);
        }
        let opts = parse(&["plan", "--simd", "f64x4"]).unwrap();
        assert_eq!(opts.simd, SimdPolicy::Forced(SimdWidth::F64x4));
        // ...the default is auto, and junk fails loudly.
        assert_eq!(parse(&["bench"]).unwrap().simd, SimdPolicy::Auto);
        assert!(parse(&["bench", "--simd", "avx99"])
            .unwrap_err()
            .contains("not one of"));
        assert!(parse(&["bench", "--simd"])
            .unwrap_err()
            .contains("needs a value"));
    }

    #[test]
    fn timeline_flag() {
        let opts = parse(&["fig14", "--ranks", "1,2", "--timeline", "out.trace.json"]).unwrap();
        assert_eq!(opts.timeline.as_deref(), Some("out.trace.json"));
        assert!(parse(&["fig14", "--timeline"])
            .unwrap_err()
            .contains("needs a value"));
    }

    #[test]
    fn help_variants() {
        assert!(parse(&["--help"]).unwrap().help);
        assert!(parse(&["-h"]).unwrap().help);
        assert!(parse(&["help"]).unwrap().help);
    }

    #[test]
    fn flags_may_precede_the_command() {
        let opts = parse(&["--seed", "42", "fig8"]).unwrap();
        assert_eq!(opts.command, "fig8");
        assert_eq!(opts.seed, 42);
    }
}
