//! Regenerates every table and figure of the paper's evaluation
//! (Section 5). Each subcommand prints the rows/series of one exhibit;
//! `all` prints everything. Absolute numbers come from the streaming-device
//! cost model (the hardware substitution documented in DESIGN.md); the
//! claims to check are ratios and shapes, recorded in EXPERIMENTS.md.
//!
//! Every run is instrumented, so `--json <path>` can write a structured
//! [`RunReport`] of whatever command executed, `profile` prints the
//! phase/imbalance/histogram view directly, and `checkjson <path>`
//! validates a previously written report (the CI smoke check). See
//! `reproduce --help` for the flag reference.

use std::collections::HashMap;
use ustencil_bench::cli::{parse_cli, CliOptions, USAGE};
use ustencil_bench::record::{min_of, BenchRecord};
use ustencil_bench::{mesh_sizes, size_label, Workload};
use ustencil_core::per_element::memory_overhead;
use ustencil_core::prelude::*;
use ustencil_dist::{run_dist, DistOptions, SCHEME_LABEL as DIST_SCHEME_LABEL};
use ustencil_mesh::MeshClass;
use ustencil_plan::{ApplyOptions, PlanExt, PATCH_SCHEME_LABEL, SCHEME_LABEL};
use ustencil_serve::traffic::{self, TrafficConfig, TrafficOutcome};
use ustencil_serve::SCHEME_LABEL as SERVE_SCHEME_LABEL;
use ustencil_trace::Timeline;

/// Largest default mesh size per polynomial degree (indexed by `p`).
/// Quadratic stops at 4k and cubic is skipped by default so the
/// single-core run stays under ~15 minutes (the cubic stencil spans 10
/// cells, an order of magnitude more work); `--full` lifts every cap.
fn degree_caps(full: bool) -> [usize; 4] {
    if full {
        [usize::MAX; 4]
    } else {
        [usize::MAX, usize::MAX, 4_000, 0]
    }
}

/// Cache of runs keyed by (class, size, p, scheme) so `all` executes each
/// configuration once. Every executed run is also appended to `records`,
/// the raw material of the `--json` report.
struct Runner {
    seed: u64,
    simd: SimdPolicy,
    workloads: HashMap<(MeshClass, usize, usize), Workload>,
    runs: HashMap<(MeshClass, usize, usize, &'static str), Solution>,
    records: Vec<RunRecord>,
}

impl Runner {
    fn new(seed: u64, simd: SimdPolicy) -> Self {
        Self {
            seed,
            simd,
            workloads: HashMap::new(),
            runs: HashMap::new(),
            records: Vec::new(),
        }
    }

    fn workload(&mut self, class: MeshClass, size: usize, p: usize) -> &Workload {
        let seed = self.seed;
        self.workloads
            .entry((class, size, p))
            .or_insert_with(|| Workload::build(class, size, p, seed))
    }

    fn run(&mut self, class: MeshClass, size: usize, p: usize, scheme: Scheme) -> &Solution {
        let key = (class, size, p, scheme.label());
        if !self.runs.contains_key(&key) {
            self.workload(class, size, p);
            let w = &self.workloads[&(class, size, p)];
            eprintln!(
                "  [running {} {} p={} {}...]",
                class.label(),
                size_label(size),
                p,
                scheme.label()
            );
            let sol = w.run_instrumented(scheme, 16, self.simd);
            let label = format!(
                "{}/{}/p{}/{}",
                class.label(),
                size_label(size),
                p,
                scheme.label()
            );
            let sim = sol.simulate(&DeviceConfig::default());
            self.records
                .push(RunRecord::from_solution(&label, size, &sol, Some(sim)));
            self.runs.insert(key, sol);
        }
        &self.runs[&key]
    }
}

fn table1(r: &mut Runner, sizes: &[usize]) {
    println!("\n== Table 1: intersection tests, linear polynomials, low-variance meshes ==");
    println!(
        "{:>8} {:>22} {:>24} {:>8}",
        "mesh", "per-point tests", "per-element tests", "ratio"
    );
    for &n in sizes {
        let pp = r
            .run(MeshClass::LowVariance, n, 1, Scheme::PerPoint)
            .metrics;
        let pe = r
            .run(MeshClass::LowVariance, n, 1, Scheme::PerElement)
            .metrics;
        println!(
            "{:>8} {:>22} {:>24} {:>8.2}",
            size_label(n),
            pp.intersection_tests,
            pe.intersection_tests,
            pp.intersection_tests as f64 / pe.intersection_tests as f64
        );
    }
    println!("(paper: per-point/per-element ratio ~1.88-1.90 at every size)");
}

fn fig8(r: &mut Runner, sizes: &[usize]) {
    println!("\n== Figure 8: relative memory overhead, 16 patches, linear polynomials ==");
    println!("{:>8} {:>12} {:>14}", "mesh", "per-point", "per-element");
    for &n in sizes {
        let pe = r.run(MeshClass::LowVariance, n, 1, Scheme::PerElement);
        let n_points = pe.values.len();
        let overhead = memory_overhead(&pe.block_metrics, n_points);
        println!("{:>8} {:>12.3} {:>14.3}", size_label(n), 1.0, overhead);
    }
    println!("(paper: per-element starts ~2.5-3x at 4k and decays toward 1 with mesh size)");
}

fn throughput_figure(
    r: &mut Runner,
    class: MeshClass,
    sizes: &[usize],
    caps: &[usize; 4],
    title: &str,
) {
    println!("\n== {title} ==");
    println!(
        "{:>8} {:>3} {:>22} {:>24}",
        "mesh", "p", "per-point GFLOP/s", "per-element GFLOP/s"
    );
    let cfg = DeviceConfig::default();
    for &p in &[1usize, 2, 3] {
        for &n in sizes {
            if n > caps[p] {
                println!(
                    "{:>8} {:>3} {:>22} {:>24}",
                    size_label(n),
                    p,
                    "(skipped, use --full)",
                    ""
                );
                continue;
            }
            let pp = r.run(class, n, p, Scheme::PerPoint).simulate(&cfg);
            let pe = r.run(class, n, p, Scheme::PerElement).simulate(&cfg);
            println!(
                "{:>8} {:>3} {:>22.1} {:>24.1}",
                size_label(n),
                p,
                pp.gflops(),
                pe.gflops()
            );
        }
    }
    println!("(paper: per-element above per-point everywhere; both drop as p grows)");
}

fn fig13(r: &mut Runner, sizes: &[usize], caps: &[usize; 4]) {
    println!("\n== Figure 13: relative speedup over per-point (simulated device time) ==");
    println!(
        "{:>8} {:>3} {:>14} {:>14}",
        "mesh", "p", "LV speedup", "HV speedup"
    );
    let cfg = DeviceConfig::default();
    for &p in &[1usize, 2, 3] {
        for &n in sizes {
            if n > caps[p] {
                continue;
            }
            let mut row = format!("{:>8} {:>3}", size_label(n), p);
            for class in [MeshClass::LowVariance, MeshClass::HighVariance] {
                let t_pp = r.run(class, n, p, Scheme::PerPoint).simulate(&cfg).total_ms;
                let t_pe = r
                    .run(class, n, p, Scheme::PerElement)
                    .simulate(&cfg)
                    .total_ms;
                row.push_str(&format!(" {:>14.2}", t_pp / t_pe));
            }
            println!("{row}");
        }
    }
    println!("(paper: ~2x+ on LV, ~3x+ on HV, growing with p; 2-6x overall)");
}

fn fig14(r: &mut Runner, sizes: &[usize]) {
    println!("\n== Figure 14: per-element scaling on 1/2/4/8 devices, linear polynomials ==");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12}",
        "mesh", "1 GPU (ms)", "2 GPU (ms)", "4 GPU (ms)", "8 GPU (ms)"
    );
    for &n in sizes {
        // N_GPU x N_SM patches, evenly distributed (Section 4).
        let mut cols = Vec::new();
        for &n_gpu in &[1usize, 2, 4, 8] {
            let w = Workload::build(MeshClass::LowVariance, n, 1, r.seed);
            let sol = PostProcessor::new(Scheme::PerElement)
                .blocks(16 * n_gpu)
                .h_factor(w.safe_h_factor())
                .instrument(true)
                .simd(r.simd)
                .run(&w.mesh, &w.field, &w.grid);
            let cfg = DeviceConfig {
                n_devices: n_gpu,
                ..Default::default()
            };
            let sim = sol.simulate(&cfg);
            cols.push(sim.total_ms);
            let label = format!("low-variance/{}/p1/per-element@{}dev", size_label(n), n_gpu);
            r.records
                .push(RunRecord::from_solution(&label, n, &sol, Some(sim)));
        }
        println!(
            "{:>8} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
            size_label(n),
            cols[0],
            cols[1],
            cols[2],
            cols[3]
        );
    }
    println!("(paper: near-perfect linear scaling in both devices and mesh size)");
}

/// Figure 14 with `--ranks`: the rank-sharded runtime on real threads.
/// Unlike the block-partitioned projection above, every cross-rank byte
/// here is an actual serialized message through the transport layer, so
/// the device model's communication term is charged with *counted*
/// traffic rather than an estimate. Each rank count is validated against
/// the in-process per-element reference before being reported.
fn fig14_ranks(r: &mut Runner, sizes: &[usize], ranks: &[usize], timeline_path: Option<&str>) {
    println!("\n== Figure 14 (rank-sharded): per-element with interior-first overlap, linear polynomials ==");
    println!(
        "{:>8} {:>6} {:>12} {:>12} {:>11} {:>10} {:>10} {:>12} {:>10}",
        "mesh",
        "ranks",
        "sim ms",
        "barrier ms",
        "exposed ms",
        "halo elems",
        "msgs",
        "wire KiB",
        "max diff"
    );
    let mut timeline = Timeline::new();
    let mut next_pid = 1u64;
    for &n in sizes {
        let reference = r
            .run(MeshClass::LowVariance, n, 1, Scheme::PerElement)
            .values
            .clone();
        for &n_ranks in ranks {
            let simd = r.simd;
            let w = r.workload(MeshClass::LowVariance, n, 1);
            eprintln!("  [running {} triangles on {} rank(s)...]", n, n_ranks);
            let opts = DistOptions::new(n_ranks)
                .h_factor(w.safe_h_factor())
                .instrument(true)
                .simd(simd);
            let sol = match run_dist(&w.mesh, &w.field, &w.grid, &opts) {
                Ok(sol) => sol,
                Err(e) => {
                    eprintln!("rank-sharded run failed at {n} triangles, {n_ranks} ranks: {e}");
                    std::process::exit(1);
                }
            };
            let diff = sol.max_abs_diff(&reference);
            assert!(
                diff <= 1e-12,
                "{n_ranks}-rank run diverges from the per-element reference by {diff}"
            );
            let cfg = DeviceConfig {
                n_devices: n_ranks,
                ..Default::default()
            };
            let sim = sol.simulate(&cfg);
            // The phase-barrier baseline: the same counted traffic with
            // nothing hidden behind the interior sweep.
            let barrier_traffic: Vec<RankTraffic> = sol
                .traffic()
                .into_iter()
                .map(|t| RankTraffic {
                    exposed_fraction: 1.0,
                    ..t
                })
                .collect();
            let barrier = simulate_ranks(
                Scheme::PerElement,
                &sol.rank_block_metrics(),
                &barrier_traffic,
                &cfg,
            );
            let exposed_ms =
                sol.ranks.iter().map(|rr| rr.exchange_ns).max().unwrap_or(0) as f64 / 1e6;
            let comm = sol.total_comm();
            let halo: u64 = sol.ranks.iter().map(|rr| rr.halo_elements).sum();
            println!(
                "{:>8} {:>6} {:>12.2} {:>12.2} {:>11.3} {:>10} {:>10} {:>12.1} {:>10.1e}",
                size_label(n),
                n_ranks,
                sim.total_ms,
                barrier.total_ms,
                exposed_ms,
                halo,
                comm.msgs_sent,
                comm.bytes_sent as f64 / 1024.0,
                diff
            );
            let label = format!("low-variance/{}/p1/dist@{}ranks", size_label(n), n_ranks);
            sol.add_to_timeline(&mut timeline, next_pid, &label);
            next_pid += 1;
            r.records.push(sol.to_run_record(&label, n, Some(sim)));
        }
    }
    if let Some(path) = timeline_path {
        let text = timeline.to_pretty_string();
        if let Err(e) = std::fs::write(path, &text) {
            eprintln!("cannot write '{path}': {e}");
            std::process::exit(1);
        }
        eprintln!(
            "  [wrote {} track(s), {} flow arrow(s) to {path}; load at ui.perfetto.dev]",
            timeline.tracks().len(),
            timeline.flows().len()
        );
    }
    println!(
        "(log-log in ranks x size: compute shrinks per rank while counted halo traffic grows; \
         'sim ms' charges only the exposed slice of the exchange, 'barrier ms' the \
         stop-and-wait baseline on the same traffic)"
    );
}

/// The `plan` subcommand: per mesh size, run the per-element scheme once
/// directly, compile an evaluation plan, apply it to `timesteps` synthetic
/// fields (the simulation frames a serving system would post-process), and
/// report the amortization: build cost, per-apply cost, speedup over
/// re-running the direct scheme per frame, and the crossover frame count
/// `T*` past which the plan is cheaper in total.
fn plan_cmd(r: &mut Runner, sizes: &[usize], timesteps: usize) {
    println!(
        "\n== Evaluation plans: build once, apply {} timestep(s); low-variance, p=1 ==",
        timesteps
    );
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>10} {:>6} {:>10}",
        "mesh", "direct ms", "build ms", "apply ms", "speedup", "T*", "nnz"
    );
    for &n in sizes {
        let direct = r.run(MeshClass::LowVariance, n, 1, Scheme::PerElement);
        let direct_ms = direct.wall.as_secs_f64() * 1e3;
        let direct_values = direct.values.clone();

        let simd = r.simd;
        let w = r.workload(MeshClass::LowVariance, n, 1);
        let processor = PostProcessor::new(Scheme::PerElement)
            .blocks(16)
            .h_factor(w.safe_h_factor())
            .instrument(true)
            .simd(simd);
        eprintln!("  [compiling plan for {} triangles...]", n);
        let plan = processor.compile_plan(&w.mesh, w.p, &w.grid);
        let build_ms = plan.build_wall().as_secs_f64() * 1e3;

        // Synthetic timesteps: the projected field with coefficients
        // scaled per frame, standing in for an evolving simulation.
        let apply_opts = ApplyOptions {
            n_blocks: 16,
            parallel: true,
            instrument: true,
            simd,
        };
        let mut apply_ms_sum = 0.0;
        let mut last = None;
        for t in 0..timesteps {
            let mut field = w.field.clone();
            let scale = 1.0 + 0.01 * t as f64;
            for c in field.coefficients_mut() {
                *c *= scale;
            }
            let sol = plan.apply_with(&field, &apply_opts);
            apply_ms_sum += sol.wall.as_secs_f64() * 1e3;
            if t == 0 {
                // Frame 0 is the unscaled field: the plan must reproduce
                // the direct run it replaces.
                let diff = sol.max_abs_diff(&direct_values);
                assert!(
                    diff <= 1e-12,
                    "plan disagrees with direct run by {diff} at {n} triangles"
                );
            }
            last = Some(sol);
        }
        let apply_ms = apply_ms_sum / timesteps as f64;
        let speedup = direct_ms / apply_ms;
        // Smallest frame count where build + T * apply < T * direct.
        let crossover = if direct_ms > apply_ms {
            format!("{}", (build_ms / (direct_ms - apply_ms)).ceil().max(1.0))
        } else {
            "inf".to_string()
        };
        println!(
            "{:>8} {:>12.1} {:>12.1} {:>12.2} {:>9.1}x {:>6} {:>10}",
            size_label(n),
            direct_ms,
            build_ms,
            apply_ms,
            speedup,
            crossover,
            plan.nnz()
        );

        let label = format!("low-variance/{}/p1/plan", size_label(n));
        let sol = last.expect("at least one timestep");
        r.records.push(plan.to_run_record(&label, n, &sol));
    }
    println!("(amortization: a plan pays for itself after T* frames; see EXPERIMENTS.md)");
}

/// The `amr` subcommand: a dG field under a moving refinement front.
/// Frame 0 compiles the evaluation plan; every later frame derives its
/// mesh from the base (midpoint-refining the band under the front's
/// position), diffs it against the previous frame's mesh
/// ([`DirtySet::diff`](ustencil_plan::DirtySet::diff)) and revalidates the
/// plan by incremental patch
/// ([`EvalPlan::patched`](ustencil_plan::EvalPlan::patched)) — only the
/// rows whose stencil footprint touches the front pay recompilation, so
/// each frame costs delta-compile time instead of a full rebuild.
fn amr_cmd(r: &mut Runner, sizes: &[usize], frames: usize) {
    use ustencil_bench::test_function;
    use ustencil_dg::project_l2;
    use ustencil_mesh::{elements_on_longest_edge, refine_elements};
    use ustencil_plan::{CompileOptions, DirtySet, EvalPlan};

    /// Width of the refined band in domain units; elements whose centroid
    /// falls under the front are split 1 → 4.
    const FRONT_WIDTH: f64 = 0.004;
    /// How far the front advances per frame. A real tracking front moves a
    /// couple of band widths per frame, so consecutive frames share most of
    /// their footprint closure and the diff stays a small fraction of the
    /// mesh — the regime the patch engine is built for.
    const FRONT_STEP: f64 = 0.008;

    println!(
        "\n== AMR moving front: {} frame(s), incremental patch vs full compile; low-variance, p=1 ==",
        frames
    );
    println!(
        "{:>8} {:>6} {:>8} {:>10} {:>10} {:>12} {:>12} {:>7}",
        "mesh", "frame", "dirty", "respliced", "rows", "patch ms", "full ms", "ratio"
    );
    for &n in sizes {
        // Kernel scaled to the *refined* elements: the front splits edges in
        // half, and SIAC wants h to track the local element size, so the
        // moving-front scenario post-processes at half the coarse-mesh scale.
        let (base_mesh, h_factor) = {
            let w = r.workload(MeshClass::LowVariance, n, 1);
            (w.mesh.clone(), 0.5 * w.safe_h_factor())
        };
        let options = CompileOptions {
            h_factor,
            n_blocks: 16,
            parallel: true,
            instrument: true,
            simd: r.simd,
            ..CompileOptions::default()
        };
        let apply_opts = ApplyOptions {
            n_blocks: 16,
            parallel: true,
            instrument: true,
            simd: r.simd,
        };
        // The front never refines an element owning the longest edge:
        // that would change the kernel scale h and force a full rebuild.
        let pinned = elements_on_longest_edge(&base_mesh);

        // Each frame's mesh derives from the *base* mesh (the front moves,
        // it does not accumulate); the diff runs between consecutive
        // frames, so de-refinement behind the front is exercised too.
        let frame_mesh = |t: usize| {
            let front = (0.25 + t as f64 * FRONT_STEP).fract();
            let band: Vec<u32> = (0..base_mesh.n_triangles() as u32)
                .filter(|&e| {
                    let c = base_mesh.centroid(e as usize);
                    !pinned[e as usize] && (c.x - front).abs() <= FRONT_WIDTH / 2.0
                })
                .collect();
            refine_elements(&base_mesh, &band)
        };

        eprintln!("  [amr {}: compiling frame 0...]", size_label(n));
        let mut mesh = frame_mesh(0);
        let mut grid = ComputationGrid::quadrature_points(&mesh, 1);
        let mut plan = EvalPlan::compile(&mesh, &grid, 1, &options);
        let full_ms = plan.build_wall().as_secs_f64() * 1e3;
        {
            let field = project_l2(&mesh, 1, test_function, 4);
            let sol = plan.apply_with(&field, &apply_opts);
            let label = format!("low-variance/{}/p1/amr-frame0", size_label(n));
            r.records
                .push(plan.to_run_record(&label, mesh.n_triangles(), &sol));
        }
        println!(
            "{:>8} {:>6} {:>8} {:>10} {:>10} {:>12} {:>12.1} {:>7}",
            size_label(n),
            0,
            "-",
            "-",
            grid.len(),
            "-",
            full_ms,
            "-"
        );

        for t in 1..frames {
            let next_mesh = frame_mesh(t);
            let next_grid = ComputationGrid::quadrature_points(&next_mesh, 1);
            let dirty = DirtySet::diff(&mesh, &grid, &next_mesh, &next_grid);
            let (next_plan, delta) = plan
                .patched(&next_mesh, &next_grid, &dirty, &options)
                .unwrap_or_else(|e| {
                    eprintln!("amr frame {t} at {n} triangles cannot patch: {e}");
                    std::process::exit(1);
                });
            // At smoke scale, cross-check the patched plan against an
            // independent fresh compile: bit-identical CSR content.
            if n <= 4_000 {
                let fresh = EvalPlan::compile(&next_mesh, &next_grid, 1, &options);
                assert_eq!(
                    next_plan.cols(),
                    fresh.cols(),
                    "frame {t}: patched cols differ"
                );
                assert!(
                    next_plan.weights_bits().eq(fresh.weights_bits()),
                    "frame {t}: patched weights differ from fresh compile"
                );
            }
            let field = project_l2(&next_mesh, 1, test_function, 4);
            let sol = next_plan.apply_with(&field, &apply_opts);
            let label = format!("low-variance/{}/p1/amr-frame{}", size_label(n), t);
            r.records.push(next_plan.to_run_record_patched(
                &label,
                next_mesh.n_triangles(),
                &sol,
                &delta,
            ));
            println!(
                "{:>8} {:>6} {:>8} {:>10} {:>10} {:>12.2} {:>12.1} {:>6.1}%",
                size_label(n),
                t,
                delta.dirty_elements,
                delta.respliced_rows,
                next_grid.len(),
                delta.patch_ms,
                delta.full_build_ms,
                100.0 * delta.patch_ms / delta.full_build_ms
            );
            (mesh, grid, plan) = (next_mesh, next_grid, next_plan);
        }
    }
    println!(
        "(a moving front revalidates the plan at delta cost per frame; see DESIGN.md section 16)"
    );
}

/// The `serve` subcommand: drive the multi-tenant plan-cache service with
/// the seeded zipf traffic generator, then replay the identical request
/// stream against a naive compile-per-request baseline, and print the
/// side-by-side throughput and latency quantiles. Returns both run
/// records for the `--json` report.
fn serve_cmd(opts: &CliOptions) -> Vec<RunRecord> {
    let cfg = TrafficConfig {
        clients: opts.clients,
        requests: opts.requests,
        seed: opts.seed,
        ..TrafficConfig::default()
    };
    println!("\n== Plan-cache service: {} ==", traffic::describe(&cfg));
    eprintln!("  [driving the cached service...]");
    let cached = traffic::run_cached(&cfg);
    eprintln!("  [driving the naive compile-per-request baseline...]");
    let naive = traffic::run_naive(&cfg);

    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10} {:>9} {:>7} {:>8}",
        "mode", "wall ms", "req/s", "p50 us", "p99 us", "compiles", "hits", "batches"
    );
    for (mode, out) in [("cached", &cached), ("naive", &naive)] {
        println!(
            "{:>8} {:>10.1} {:>10.0} {:>10} {:>10} {:>9} {:>7} {:>8}",
            mode,
            out.wall_ms,
            out.throughput_rps,
            out.latency_us(0.50),
            out.latency_us(0.99),
            out.stats.compiles,
            out.stats.hits,
            out.stats.batches
        );
    }
    let speedup = cached.throughput_rps / naive.throughput_rps;
    println!(
        "throughput: cached is {speedup:.1}x naive ({} compiles for {} requests; \
         {} single-flight waits, {} coalesced batches)",
        cached.stats.compiles,
        cached.stats.requests,
        cached.stats.single_flight_waits,
        cached.stats.batches
    );
    println!("(compile-once/apply-many economics as a service: see DESIGN.md section 14)");
    vec![cached.record, naive.record]
}

/// One timed serve fixture for `bench_cmd`: the cached service at the
/// default traffic shape, reported via its deterministic shape metrics and
/// its wall/p99 timings.
fn serve_bench_fixture(opts: &CliOptions) -> (TrafficOutcome, TrafficConfig) {
    let cfg = TrafficConfig {
        seed: opts.seed,
        ..TrafficConfig::default()
    };
    eprintln!("  [driving {}...]", traffic::describe(&cfg));
    (traffic::run_cached(&cfg), cfg)
}

/// The `bench` subcommand: the standard fixtures of the performance
/// observatory, timed as min-of-`--reps` walls and optionally written as a
/// versioned [`BenchRecord`] for `tools/bench_diff.py` to gate on.
///
/// Fixtures: plan apply at the ladder's large size, the rank-sharded
/// fig14 exchange at the medium size across the rank ladder, the
/// instrumented overlap run at 4 ranks (gating the exposed-comms slice),
/// and the staged-vs-fused integration micro-kernel. Each entry also pins a few
/// deterministic shape metrics (nnz, counted wire bytes) so a diff can
/// distinguish "the machine got slower" from "the workload changed".
fn bench_cmd(opts: &CliOptions) {
    let (dist_size, plan_size) = match opts.sizes.as_deref() {
        Some(sizes) => (sizes[0], *sizes.last().expect("validated non-empty")),
        None => (16_000, 64_000),
    };
    let ranks: Vec<usize> = opts.ranks.clone().unwrap_or_else(|| vec![1, 2, 4, 8]);
    let reps = opts.reps;
    let mut record = BenchRecord::new(reps);
    println!(
        "\n== Benchmark fixtures: min of {} rep(s), rev {} ==",
        reps, record.git_rev
    );
    println!("{:>28} {:>12}  metrics", "fixture", "wall ms");

    // Fixture 1: plan apply (the amortized hot path of a serving system).
    let w = Workload::build(MeshClass::LowVariance, plan_size, 1, opts.seed);
    eprintln!("  [compiling plan for {} triangles...]", plan_size);
    let processor = PostProcessor::new(Scheme::PerElement)
        .blocks(16)
        .h_factor(w.safe_h_factor())
        .simd(opts.simd);
    let plan = processor.compile_plan(&w.mesh, w.p, &w.grid);
    let apply_opts = ApplyOptions {
        n_blocks: 16,
        parallel: true,
        instrument: false,
        simd: opts.simd,
    };
    let (wall, sol) = min_of(reps, || plan.apply_with(&w.field, &apply_opts));
    let name = format!("plan.apply/{}", size_label(plan_size));
    let metrics = [
        ("nnz", plan.nnz() as f64),
        ("rows", sol.values.len() as f64),
    ];
    print_bench_row(&name, wall, &metrics);
    record.push(&name, wall, &metrics);

    // Fixture 1b: incremental plan patch after a mesh edit, reusing
    // fixture 1's plan as the base. A band displacement dirties ~5% of the
    // elements; the timed unit is diff + patch (the whole revalidation a
    // cache pays), and the respliced row count pins the closure's size as
    // a shape metric.
    {
        use ustencil_mesh::displace_band;
        use ustencil_plan::{CompileOptions, DirtySet};
        let moved = displace_band(&w.mesh, 0.475, 0.525, 0.2, opts.seed);
        let moved_grid = ComputationGrid::quadrature_points(&moved, w.p);
        // Same policy the base plan compiled under: patched rows must
        // reduce on the same ISA as the rows they splice into.
        let patch_options = CompileOptions {
            h_factor: w.safe_h_factor(),
            n_blocks: 16,
            parallel: true,
            simd: opts.simd,
            ..CompileOptions::default()
        };
        eprintln!("  [patching the plan after a band displacement...]");
        let (wall, (_, delta)) = min_of(reps, || {
            let dirty = DirtySet::diff(&w.mesh, &w.grid, &moved, &moved_grid);
            plan.patched(&moved, &moved_grid, &dirty, &patch_options)
                .unwrap_or_else(|e| {
                    eprintln!("bench plan.patch fixture cannot patch: {e}");
                    std::process::exit(1);
                })
        });
        let name = format!("plan.patch/{}", size_label(plan_size));
        let metrics = [
            ("dirty_elements", delta.dirty_elements as f64),
            ("respliced_rows", delta.respliced_rows as f64),
        ];
        print_bench_row(&name, wall, &metrics);
        record.push(&name, wall, &metrics);
    }

    // Fixture 1c: the SIMD dispatch ladder on the same plan's row kernel,
    // scalar vs auto. The names are stable but the dispatched lane width
    // is pinned as a shape metric, so a host (or a feature-detection
    // regression) that resolves `auto` to a different ISA shows up in
    // bench_diff as a workload change rather than a silent timing swing.
    for policy in [SimdPolicy::Scalar, SimdPolicy::Auto] {
        let simd_opts = ApplyOptions {
            n_blocks: 16,
            parallel: true,
            instrument: false,
            simd: policy,
        };
        eprintln!("  [applying the plan with simd={}...]", policy.label());
        let (wall, sol) = min_of(reps, || plan.apply_with(&w.field, &simd_opts));
        let name = format!("kernel.simd/{}", policy.label());
        let metrics = [
            ("lanes", sol.simd.lanes as f64),
            ("rows", sol.values.len() as f64),
        ];
        print_bench_row(&name, wall, &metrics);
        record.push(&name, wall, &metrics);
    }

    // Fixture 2: the rank-sharded halo exchange at each rank count.
    let w = Workload::build(MeshClass::LowVariance, dist_size, 1, opts.seed);
    for &n_ranks in &ranks {
        eprintln!(
            "  [running {} triangles on {} rank(s)...]",
            dist_size, n_ranks
        );
        let dist_opts = DistOptions::new(n_ranks)
            .h_factor(w.safe_h_factor())
            .simd(opts.simd);
        let (wall, sol) = min_of(reps, || {
            run_dist(&w.mesh, &w.field, &w.grid, &dist_opts).unwrap_or_else(|e| {
                eprintln!("bench dist run failed at {n_ranks} ranks: {e}");
                std::process::exit(1);
            })
        });
        let comm = sol.total_comm();
        let name = format!("dist.halo/{}@{}ranks", size_label(dist_size), n_ranks);
        let metrics = [
            ("bytes_sent", comm.bytes_sent as f64),
            ("msgs_sent", comm.msgs_sent as f64),
        ];
        print_bench_row(&name, wall, &metrics);
        record.push(&name, wall, &metrics);
    }

    // Fixture 2b: the interior-first overlap at 4 ranks, instrumented so
    // the exposed slice of the exchange is measured. `exposed_ms` is
    // gated as a timing by bench_diff; interior/frontier pin the
    // schedule's work partition as shape metrics.
    {
        let n_ranks = 4usize;
        eprintln!(
            "  [running {} triangles on {} rank(s), instrumented...]",
            dist_size, n_ranks
        );
        let dist_opts = DistOptions::new(n_ranks)
            .h_factor(w.safe_h_factor())
            .instrument(true)
            .simd(opts.simd);
        let (wall, sol) = min_of(reps, || {
            run_dist(&w.mesh, &w.field, &w.grid, &dist_opts).unwrap_or_else(|e| {
                eprintln!("bench overlap run failed at {n_ranks} ranks: {e}");
                std::process::exit(1);
            })
        });
        let exposed_ms = sol.ranks.iter().map(|r| r.exchange_ns).max().unwrap_or(0) as f64 / 1e6;
        let interior: u64 = sol.ranks.iter().map(|r| r.interior).sum();
        let frontier: u64 = sol.ranks.iter().map(|r| r.frontier).sum();
        let name = format!("dist.overlap/{}@{}ranks", size_label(dist_size), n_ranks);
        let metrics = [
            ("exposed_ms", exposed_ms),
            ("interior", interior as f64),
            ("frontier", frontier as f64),
        ];
        print_bench_row(&name, wall, &metrics);
        record.push(&name, wall, &metrics);
    }

    // Fixture 3: staged vs fused integration micro-kernel.
    for (name, wall, n_elems) in micro_integration(reps) {
        let metrics = [("elements", n_elems as f64)];
        print_bench_row(&name, wall, &metrics);
        record.push(&name, wall, &metrics);
    }

    // Fixture 4: the cached plan service under the default zipf traffic.
    // The run repeats its requests internally, so one run is the sample;
    // the shape metrics (requests, compiles, coalesced rows) are seed-
    // deterministic, and the latency quantile is gated as a timing.
    let (out, cfg) = serve_bench_fixture(opts);
    let name = format!("serve.cached/{}x{}", cfg.clients, cfg.requests);
    let metrics = [
        ("requests", out.stats.requests as f64),
        ("compiles", out.stats.compiles as f64),
        ("batched_rows", out.stats.batched_rows as f64),
        ("p99_us", out.latency_us(0.99) as f64),
    ];
    print_bench_row(&name, out.wall_ms, &metrics);
    record.push(&name, out.wall_ms, &metrics);

    if let Some(path) = &opts.record {
        let text = record.to_pretty_string();
        if let Err(e) = std::fs::write(path, &text) {
            eprintln!("cannot write '{path}': {e}");
            std::process::exit(1);
        }
        eprintln!(
            "  [wrote {} fixture(s) to {path}; compare with tools/bench_diff.py]",
            record.entries.len()
        );
    }
}

fn print_bench_row(name: &str, wall: f64, metrics: &[(&str, f64)]) {
    let m: Vec<String> = metrics.iter().map(|(k, v)| format!("{k}={v:.0}")).collect();
    println!("{:>28} {:>12.3}  {}", name, wall, m.join(" "));
}

/// The staged-vs-fused integration micro, per polynomial degree
/// `p in {1, 2, 3}`: one realistic stencil query's worth of element
/// images, integrated through a fused closure over the public geometry
/// primitives, through the shared traversal driver's staged SoA path
/// with the vector reduction forced off (`staged-scalar`), and through
/// the same staged path on the host's widest ISA (`staged`). Returns
/// `(name, wall_ms, n_elements)` per variant. (The Criterion twin lives
/// in `benches/micro_kernels.rs`; this one is cheap enough to gate CI
/// on.)
fn micro_integration(reps: usize) -> Vec<(String, f64, usize)> {
    use ustencil_core::integrate::{ElementData, IntegrationCtx};
    use ustencil_core::kernel::{AccumulateSolution, QuadStage, StencilTraversal};
    use ustencil_dg::project_l2;
    use ustencil_geometry::{clip_triangle_rect, fan_triangulate, Point2, Vec2, GEOM_EPS};
    use ustencil_mesh::generate_mesh;
    use ustencil_quadrature::TriangleRule;
    use ustencil_siac::Stencil2d;

    let mesh = generate_mesh(MeshClass::LowVariance, 200, 7);
    // Enough sweeps per repetition for a wall resolvable above timer noise.
    const SWEEPS: usize = 20;
    let mut rows = Vec::new();

    for p in [1usize, 2, 3] {
        let field = project_l2(&mesh, p, |x, y| (x * 3.0).sin() + y * y - 0.3 * x * y, 1);
        let basis = field.basis().clone();
        let stencil = Stencil2d::symmetric(p, mesh.max_edge_length());
        let rule = TriangleRule::with_strength(IntegrationCtx::required_strength(p, p));
        let exps = basis.monomial_exponents();
        let center = Point2::new(0.5, 0.5);
        let support = stencil.support_rect(center);
        let elems: Vec<ElementData> = (0..mesh.n_triangles())
            .map(|e| ElementData::gather(&mesh, &field, &basis, e))
            .filter(|ed| support.intersects_aabb(&ed.bbox))
            .collect();
        assert!(!elems.is_empty());

        let (fused_wall, _) = min_of(reps, || {
            let mut total = 0.0;
            for _ in 0..SWEEPS {
                for ed in &elems {
                    let h = stencil.h();
                    let n_cells = stencil.cells_per_side();
                    let (lo, _) = stencil.kernel().support();
                    let x_base = center.x + lo * h;
                    let y_base = center.y + lo * h;
                    let bbox = &ed.bbox;
                    let i0 = (((bbox.min.x - x_base) / h).floor().max(0.0)) as usize;
                    let j0 = (((bbox.min.y - y_base) / h).floor().max(0.0)) as usize;
                    if i0 >= n_cells || j0 >= n_cells || bbox.max.x < x_base || bbox.max.y < y_base
                    {
                        continue;
                    }
                    let i1 = ((((bbox.max.x - x_base) / h).floor()) as usize).min(n_cells - 1);
                    let j1 = ((((bbox.max.y - y_base) / h).floor()) as usize).min(n_cells - 1);
                    for j in j0..=j1 {
                        for i in i0..=i1 {
                            let cell = stencil.cell_rect(center, i, j);
                            let poly = clip_triangle_rect(&ed.tri, &cell);
                            if poly.is_degenerate(GEOM_EPS) {
                                continue;
                            }
                            for sub in fan_triangulate(&poly) {
                                total += rule.integrate_physical(&sub, |x, y| {
                                    let pt = Point2::new(x, y);
                                    stencil.eval(center, pt) * ed.eval(pt, exps)
                                });
                            }
                        }
                    }
                }
            }
            total
        });
        rows.push((
            format!("micro.integration/fused/p{p}"),
            fused_wall,
            elems.len(),
        ));

        for (variant, isa) in [
            ("staged-scalar", SimdIsa::Scalar),
            ("staged", SimdPolicy::Auto.resolve()),
        ] {
            let trav = StencilTraversal::new(&stencil, &rule, exps, basis.n_modes()).with_simd(isa);
            let mut stage = QuadStage::default();
            let mut metrics = Metrics::default();
            let mut sink = AccumulateSolution::new();
            let (wall, _) = min_of(reps, || {
                let mut total = 0.0;
                for _ in 0..SWEEPS {
                    for ed in &elems {
                        trav.integrate_image(
                            center,
                            ed,
                            Vec2::ZERO,
                            &mut stage,
                            &mut sink,
                            &mut metrics,
                        );
                        total += sink.take();
                    }
                }
                total
            });
            rows.push((
                format!("micro.integration/{variant}/p{p}"),
                wall,
                elems.len(),
            ));
        }
    }
    rows
}

/// The `profile` subcommand: run both schemes on the smallest configured
/// size and print the phase, load-imbalance, and histogram view.
fn profile(r: &mut Runner, sizes: &[usize]) {
    let n = sizes.iter().copied().min().expect("at least one size");
    println!("\n== Profile: {} triangles, low-variance, p=1 ==", n);
    for scheme in [Scheme::PerPoint, Scheme::PerElement] {
        r.run(MeshClass::LowVariance, n, 1, scheme);
    }
    for record in r.records.clone() {
        print_record_profile(&record);
    }
}

fn print_record_profile(record: &RunRecord) {
    println!(
        "\n-- {} ({} patches, {:.1} ms wall) --",
        record.label,
        record.patches.len(),
        record.wall_ms
    );
    println!("phases:");
    for s in &record.spans {
        println!(
            "  {:indent$}{:<24} {:>10.3} ms",
            "",
            s.name,
            s.duration_ns as f64 / 1e6,
            indent = 2 * s.depth as usize
        );
    }
    println!("load imbalance across patches:");
    println!(
        "  {:<20} {:>6} {:>12} {:>10} {:>8} {:>8}",
        "proxy", "n", "mean", "max/mean", "cov", "gini"
    );
    for (name, s) in record.imbalance() {
        println!(
            "  {:<20} {:>6} {:>12.1} {:>10.3} {:>8.3} {:>8.3}",
            name, s.n, s.mean, s.max_over_mean, s.cov, s.gini
        );
    }
    println!("distributions:");
    println!(
        "  {:<28} {:>10} {:>10} {:>8} {:>8} {:>8}",
        "histogram", "count", "mean", "p50<=", "p99<=", "max"
    );
    for (name, h) in &record.histograms {
        println!(
            "  {:<28} {:>10} {:>10.2} {:>8} {:>8} {:>8}",
            name,
            h.count(),
            h.mean(),
            h.quantile_upper_bound(0.50),
            h.quantile_upper_bound(0.99),
            h.max()
        );
    }
}

/// The `checkjson` subcommand: parse a `--json` artifact and assert it
/// carries the content the observability layer promises. Exits non-zero
/// with a reason when the report is malformed or hollow.
fn checkjson(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
    let report = RunReport::from_json(&text)?;
    if report.runs.is_empty() {
        return Err("report has no runs".to_string());
    }
    for run in &report.runs {
        let ctx = &run.label;
        if Scheme::from_label(&run.scheme).is_none()
            && run.scheme != SCHEME_LABEL
            && run.scheme != PATCH_SCHEME_LABEL
            && run.scheme != DIST_SCHEME_LABEL
            && run.scheme != SERVE_SCHEME_LABEL
        {
            return Err(format!("{ctx}: unknown scheme '{}'", run.scheme));
        }
        if (run.scheme == SCHEME_LABEL || run.scheme == PATCH_SCHEME_LABEL) && run.plan.is_none() {
            return Err(format!("{ctx}: plan run without plan stats"));
        }
        // Schema v6: every evaluation run (direct schemes, plan apply,
        // plan patch, the rank-sharded runtime) reports which SIMD ISA its
        // reduction dispatched to and the throughput it achieved; serve
        // records aggregate applies of heterogeneous plans and carry none.
        if run.scheme == SERVE_SCHEME_LABEL {
            if run.simd.is_some() {
                return Err(format!(
                    "{ctx}: serve run with a simd record (serve aggregates \
                     heterogeneous applies)"
                ));
            }
        } else {
            let simd = run
                .simd
                .as_ref()
                .ok_or_else(|| format!("{ctx}: run without a simd record"))?;
            if SimdPolicy::from_label(&simd.policy).is_none() {
                return Err(format!("{ctx}: unknown simd policy '{}'", simd.policy));
            }
            let lanes_match_isa = matches!(
                (simd.isa.as_str(), simd.lanes),
                ("scalar", 1) | ("avx2", 4) | ("avx512", 8)
            );
            if !lanes_match_isa {
                return Err(format!(
                    "{ctx}: simd isa '{}' reporting {} lane(s)",
                    simd.isa, simd.lanes
                ));
            }
            if !simd.gflops.is_finite() || simd.gflops <= 0.0 {
                return Err(format!(
                    "{ctx}: simd record with non-positive throughput {} GFLOP/s",
                    simd.gflops
                ));
            }
            // No upper bound: the denominator is the *single-core* nominal
            // peak, and a parallel apply may legitimately exceed it.
            if !simd.fraction_of_peak.is_finite() || simd.fraction_of_peak <= 0.0 {
                return Err(format!(
                    "{ctx}: non-positive fraction_of_peak {}",
                    simd.fraction_of_peak
                ));
            }
        }
        // Schema v5: the `delta` object is present exactly on plan+patch
        // runs, its row/nnz counts are conserved against the plan, and the
        // patch pays at most a constant floor plus work proportional to
        // the respliced fraction of a full rebuild.
        if let Some(plan) = &run.plan {
            match (&plan.delta, run.scheme == PATCH_SCHEME_LABEL) {
                (None, true) => {
                    return Err(format!("{ctx}: plan+patch run without delta stats"));
                }
                (Some(_), false) => {
                    return Err(format!(
                        "{ctx}: delta stats on a '{}' run (expected only on '{}')",
                        run.scheme, PATCH_SCHEME_LABEL
                    ));
                }
                (Some(delta), true) => {
                    if delta.respliced_rows > plan.rows {
                        return Err(format!(
                            "{ctx}: {} respliced rows exceed the plan's {} rows",
                            delta.respliced_rows, plan.rows
                        ));
                    }
                    if delta.respliced_nnz > plan.nnz {
                        return Err(format!(
                            "{ctx}: {} respliced nnz exceed the plan's {} nnz",
                            delta.respliced_nnz, plan.nnz
                        ));
                    }
                    if delta.dirty_elements == 0 {
                        return Err(format!("{ctx}: plan+patch run with an empty dirty set"));
                    }
                    let timings_positive = delta.patch_ms > 0.0 && delta.full_build_ms > 0.0;
                    if !timings_positive {
                        return Err(format!(
                            "{ctx}: non-positive patch timing ({} ms patch, {} ms full)",
                            delta.patch_ms, delta.full_build_ms
                        ));
                    }
                    // Work-proportional amortization bound: a patch that
                    // resplices fraction f of the rows may cost at most
                    // 25% + 150%·f of the full compile (the constant floor
                    // absorbs diff/splice overhead at smoke scale, where
                    // the closure is a large fraction of a tiny mesh).
                    let f = delta.respliced_rows as f64 / plan.rows.max(1) as f64;
                    let bound = delta.full_build_ms * (0.25 + 1.5 * f);
                    if delta.patch_ms > bound {
                        return Err(format!(
                            "{ctx}: patch took {:.2} ms, over the {:.2} ms bound \
                             (full {:.2} ms, respliced fraction {:.3})",
                            delta.patch_ms, bound, delta.full_build_ms, f
                        ));
                    }
                }
                (None, false) => {}
            }
        }
        if run.spans.is_empty() {
            return Err(format!("{ctx}: no phase spans"));
        }
        if !run.spans.iter().any(|s| s.duration_ns > 0) {
            return Err(format!("{ctx}: all span durations are zero"));
        }
        if run.patches.is_empty() {
            return Err(format!("{ctx}: no per-patch stats"));
        }
        if run.scheme == DIST_SCHEME_LABEL {
            // Rank-sharded runs promise comms accounting instead of the
            // in-process distribution histograms.
            if run.comms.is_empty() {
                return Err(format!("{ctx}: dist run without per-rank comms ledgers"));
            }
            for phase in [
                "exchange.post",
                "eval.interior",
                "exchange.drain",
                "eval.frontier",
                "exchange.flush",
                "reduce.gather",
            ] {
                if !run.spans.iter().any(|s| s.name == phase) {
                    return Err(format!("{ctx}: dist run missing the '{phase}' span"));
                }
            }
            if run.comms.len() > 1 && !run.comms.iter().any(|c| c.bytes_sent > 0) {
                return Err(format!("{ctx}: multi-rank run counted no wire traffic"));
            }
            // The coordinator's phase timeline bounds every rank's exposed
            // exchange: ranks finish draining before the gather completes.
            let run_ms: f64 = run.spans.iter().map(|s| s.duration_ns as f64 / 1e6).sum();
            for c in &run.comms {
                if c.exposed_comms_ms.is_nan() || c.exposed_comms_ms < 0.0 {
                    return Err(format!(
                        "{ctx}: rank {} has invalid exposed_comms_ms {}",
                        c.rank, c.exposed_comms_ms
                    ));
                }
                // Small slack for untraced gaps between the coordinator's
                // spans (the ranks' clocks are not the coordinator's).
                if c.exposed_comms_ms > run_ms * 1.1 + 0.5 {
                    return Err(format!(
                        "{ctx}: rank {} exposed {}ms but the whole run spans {run_ms}ms",
                        c.rank, c.exposed_comms_ms
                    ));
                }
                // Interior and frontier must partition the rank's owned
                // work: elements on the push path, plan rows on the pull
                // path.
                let split = c.interior + c.frontier;
                if split != c.owned_elements && split != c.owned_points {
                    return Err(format!(
                        "{ctx}: rank {} interior {} + frontier {} covers neither \
                         {} owned elements nor {} owned points",
                        c.rank, c.interior, c.frontier, c.owned_elements, c.owned_points
                    ));
                }
            }
            // Every duplicate a receiver discarded implies an extra send of
            // the same frame, so the fleet-wide counters must conserve.
            let retransmits: u64 = run.comms.iter().map(|c| c.retransmits).sum();
            let dup_payloads: u64 = run.comms.iter().map(|c| c.dup_payloads).sum();
            if dup_payloads > retransmits {
                return Err(format!(
                    "{ctx}: {dup_payloads} duplicate frames discarded but only \
                     {retransmits} retransmits sent"
                ));
            }
            if run.comms.len() > 1 {
                // Instrumented multi-rank runs promise the exposed-comms
                // analysis: a critical path with one utilization entry per
                // rank, and a completely joined flow trace (every halo
                // send recorded at its receiver).
                let cp = run.critical_path.as_ref().ok_or_else(|| {
                    format!("{ctx}: multi-rank dist run without a critical_path summary")
                })?;
                if cp.total_ms <= 0.0 {
                    return Err(format!("{ctx}: critical path has no duration"));
                }
                if cp.utilization.len() != run.comms.len() {
                    return Err(format!(
                        "{ctx}: {} utilization entries for {} ranks",
                        cp.utilization.len(),
                        run.comms.len()
                    ));
                }
                let sends: u64 = run.comms.iter().map(|c| c.flow_sends).sum();
                let recvs: u64 = run.comms.iter().map(|c| c.flow_recvs).sum();
                if sends == 0 || sends != recvs {
                    return Err(format!(
                        "{ctx}: flow trace is incomplete ({sends} sends, {recvs} recvs)"
                    ));
                }
            }
        } else if run.scheme == SERVE_SCHEME_LABEL {
            // Serve runs promise the multi-tenant service ledger: aggregate
            // counters that add up, a latency histogram that saw every
            // request, and one ledger per tenant.
            let serve = run
                .serve
                .as_ref()
                .ok_or_else(|| format!("{ctx}: serve run without serve stats"))?;
            if serve.requests == 0 {
                return Err(format!("{ctx}: serve run served no requests"));
            }
            if serve.misses != serve.compiles + serve.disk_loads + serve.patches {
                return Err(format!(
                    "{ctx}: {} misses but {} compiles + {} disk loads + {} patches",
                    serve.misses, serve.compiles, serve.disk_loads, serve.patches
                ));
            }
            if serve.service_us.count() != serve.requests {
                return Err(format!(
                    "{ctx}: latency histogram saw {} of {} requests",
                    serve.service_us.count(),
                    serve.requests
                ));
            }
            if serve.tenants.is_empty() {
                return Err(format!("{ctx}: serve run without per-tenant ledgers"));
            }
            let tenant_requests: u64 = serve.tenants.iter().map(|t| t.requests).sum();
            if tenant_requests != serve.requests {
                return Err(format!(
                    "{ctx}: tenant ledgers account for {tenant_requests} of {} requests",
                    serve.requests
                ));
            }
        } else {
            match run.histogram("candidates_per_query") {
                Some(h) if !h.is_empty() => {}
                _ => return Err(format!("{ctx}: candidates_per_query histogram is empty")),
            }
        }
    }
    println!(
        "ok: '{path}' carries {} instrumented run(s) for exhibit '{}'",
        report.runs.len(),
        report.exhibit
    );
    Ok(())
}

fn write_json(path: &str, opts: &CliOptions, records: Vec<RunRecord>) {
    let mut report = RunReport::new(&opts.command, opts.seed);
    report.runs = records;
    let text = report.to_pretty_string();
    if let Err(e) = std::fs::write(path, &text) {
        eprintln!("cannot write '{path}': {e}");
        std::process::exit(1);
    }
    eprintln!("  [wrote {} run record(s) to {path}]", report.runs.len());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_cli(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    if opts.help {
        println!("{USAGE}");
        return;
    }
    if opts.command == "checkjson" {
        let path = opts.path_arg.as_deref().expect("checked by parse_cli");
        if let Err(msg) = checkjson(path) {
            eprintln!("checkjson failed: {msg}");
            std::process::exit(1);
        }
        return;
    }

    let sizes: Vec<usize> = opts
        .sizes
        .clone()
        .unwrap_or_else(|| mesh_sizes(opts.full).to_vec());
    let caps = degree_caps(opts.full);
    let mut r = Runner::new(opts.seed, opts.simd);

    match opts.command.as_str() {
        "table1" => table1(&mut r, &sizes),
        "fig8" => fig8(&mut r, &sizes),
        "fig11" => throughput_figure(
            &mut r,
            MeshClass::LowVariance,
            &sizes,
            &caps,
            "Figure 11: simulated GFLOP/s, low-variance meshes",
        ),
        "fig12" => throughput_figure(
            &mut r,
            MeshClass::HighVariance,
            &sizes,
            &caps,
            "Figure 12: simulated GFLOP/s, high-variance meshes",
        ),
        "fig13" => fig13(&mut r, &sizes, &caps),
        "fig14" => match &opts.ranks {
            Some(ranks) => fig14_ranks(&mut r, &sizes, ranks, opts.timeline.as_deref()),
            None => fig14(&mut r, &sizes),
        },
        "profile" => profile(&mut r, &sizes),
        "plan" => plan_cmd(&mut r, &sizes, opts.timesteps),
        "bench" => bench_cmd(&opts),
        "serve" => r.records.extend(serve_cmd(&opts)),
        "amr" => amr_cmd(&mut r, &sizes, opts.frames),
        "all" => {
            table1(&mut r, &sizes);
            fig8(&mut r, &sizes);
            throughput_figure(
                &mut r,
                MeshClass::LowVariance,
                &sizes,
                &caps,
                "Figure 11: simulated GFLOP/s, low-variance meshes",
            );
            throughput_figure(
                &mut r,
                MeshClass::HighVariance,
                &sizes,
                &caps,
                "Figure 12: simulated GFLOP/s, high-variance meshes",
            );
            fig13(&mut r, &sizes, &caps);
            match &opts.ranks {
                Some(ranks) => fig14_ranks(&mut r, &sizes, ranks, opts.timeline.as_deref()),
                None => fig14(&mut r, &sizes),
            }
        }
        other => unreachable!("parse_cli validated the command '{other}'"),
    }

    if let Some(path) = &opts.json {
        write_json(path, &opts, r.records);
    }
}
