//! Regenerates every table and figure of the paper's evaluation
//! (Section 5). Each subcommand prints the rows/series of one exhibit;
//! `all` prints everything. Absolute numbers come from the streaming-device
//! cost model (the hardware substitution documented in DESIGN.md); the
//! claims to check are ratios and shapes, recorded in EXPERIMENTS.md.
//!
//! ```text
//! reproduce <table1|fig8|fig11|fig12|fig13|fig14|all> [--full] [--sizes N,N,..] [--seed S]
//! ```

use std::collections::HashMap;
use ustencil_bench::{mesh_sizes, size_label, Workload};
use ustencil_core::prelude::*;
use ustencil_core::per_element::memory_overhead;
use ustencil_mesh::MeshClass;

struct Options {
    command: String,
    sizes: Vec<usize>,
    seed: u64,
    /// Largest default mesh size per polynomial degree (indexed by `p`).
    /// Quadratic stops at 4k and cubic is skipped by default so the
    /// single-core run stays under ~15 minutes (the cubic stencil spans 10
    /// cells, an order of magnitude more work); `--full` lifts every cap.
    degree_caps: [usize; 4],
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());
    let full = args.iter().any(|a| a == "--full");
    let mut sizes: Vec<usize> = mesh_sizes(full).to_vec();
    let mut seed = 2013;
    let degree_caps = if full {
        [usize::MAX; 4]
    } else {
        [usize::MAX, usize::MAX, 4_000, 0]
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--sizes" => {
                let list = it.next().expect("--sizes needs a value");
                sizes = list
                    .split(',')
                    .map(|s| s.parse().expect("size must be an integer"))
                    .collect();
            }
            "--seed" => {
                seed = it.next().expect("--seed needs a value").parse().unwrap();
            }
            _ => {}
        }
    }
    Options {
        command,
        sizes,
        seed,
        degree_caps,
    }
}

/// Cache of runs keyed by (class, size, p, scheme) so `all` executes each
/// configuration once.
struct Runner {
    seed: u64,
    workloads: HashMap<(MeshClass, usize, usize), Workload>,
    runs: HashMap<(MeshClass, usize, usize, &'static str), Solution>,
}

impl Runner {
    fn new(seed: u64) -> Self {
        Self {
            seed,
            workloads: HashMap::new(),
            runs: HashMap::new(),
        }
    }

    fn workload(&mut self, class: MeshClass, size: usize, p: usize) -> &Workload {
        let seed = self.seed;
        self.workloads
            .entry((class, size, p))
            .or_insert_with(|| Workload::build(class, size, p, seed))
    }

    fn run(&mut self, class: MeshClass, size: usize, p: usize, scheme: Scheme) -> &Solution {
        let key = (class, size, p, scheme.label());
        if !self.runs.contains_key(&key) {
            self.workload(class, size, p);
            let w = &self.workloads[&(class, size, p)];
            eprintln!(
                "  [running {} {} p={} {}...]",
                class.label(),
                size_label(size),
                p,
                scheme.label()
            );
            let sol = w.run(scheme, 16);
            self.runs.insert(key, sol);
        }
        &self.runs[&key]
    }
}

fn table1(r: &mut Runner, sizes: &[usize]) {
    println!("\n== Table 1: intersection tests, linear polynomials, low-variance meshes ==");
    println!(
        "{:>8} {:>22} {:>24} {:>8}",
        "mesh", "per-point tests", "per-element tests", "ratio"
    );
    for &n in sizes {
        let pp = r.run(MeshClass::LowVariance, n, 1, Scheme::PerPoint).metrics;
        let pe = r
            .run(MeshClass::LowVariance, n, 1, Scheme::PerElement)
            .metrics;
        println!(
            "{:>8} {:>22} {:>24} {:>8.2}",
            size_label(n),
            pp.intersection_tests,
            pe.intersection_tests,
            pp.intersection_tests as f64 / pe.intersection_tests as f64
        );
    }
    println!("(paper: per-point/per-element ratio ~1.88-1.90 at every size)");
}

fn fig8(r: &mut Runner, sizes: &[usize]) {
    println!("\n== Figure 8: relative memory overhead, 16 patches, linear polynomials ==");
    println!("{:>8} {:>12} {:>14}", "mesh", "per-point", "per-element");
    for &n in sizes {
        let pe = r.run(MeshClass::LowVariance, n, 1, Scheme::PerElement);
        let n_points = pe.values.len();
        let overhead = memory_overhead(&pe.block_metrics, n_points);
        println!("{:>8} {:>12.3} {:>14.3}", size_label(n), 1.0, overhead);
    }
    println!("(paper: per-element starts ~2.5-3x at 4k and decays toward 1 with mesh size)");
}

fn throughput_figure(
    r: &mut Runner,
    class: MeshClass,
    sizes: &[usize],
    caps: &[usize; 4],
    title: &str,
) {
    println!("\n== {title} ==");
    println!(
        "{:>8} {:>3} {:>22} {:>24}",
        "mesh", "p", "per-point GFLOP/s", "per-element GFLOP/s"
    );
    let cfg = DeviceConfig::default();
    for &p in &[1usize, 2, 3] {
        for &n in sizes {
            if n > caps[p] {
                println!(
                    "{:>8} {:>3} {:>22} {:>24}",
                    size_label(n),
                    p,
                    "(skipped, use --full)",
                    ""
                );
                continue;
            }
            let pp = r.run(class, n, p, Scheme::PerPoint).simulate(&cfg);
            let pe = r.run(class, n, p, Scheme::PerElement).simulate(&cfg);
            println!(
                "{:>8} {:>3} {:>22.1} {:>24.1}",
                size_label(n),
                p,
                pp.gflops(),
                pe.gflops()
            );
        }
    }
    println!("(paper: per-element above per-point everywhere; both drop as p grows)");
}

fn fig13(r: &mut Runner, sizes: &[usize], caps: &[usize; 4]) {
    println!("\n== Figure 13: relative speedup over per-point (simulated device time) ==");
    println!(
        "{:>8} {:>3} {:>14} {:>14}",
        "mesh", "p", "LV speedup", "HV speedup"
    );
    let cfg = DeviceConfig::default();
    for &p in &[1usize, 2, 3] {
        for &n in sizes {
            if n > caps[p] {
                continue;
            }
            let mut row = format!("{:>8} {:>3}", size_label(n), p);
            for class in [MeshClass::LowVariance, MeshClass::HighVariance] {
                let t_pp = r.run(class, n, p, Scheme::PerPoint).simulate(&cfg).total_ms;
                let t_pe = r
                    .run(class, n, p, Scheme::PerElement)
                    .simulate(&cfg)
                    .total_ms;
                row.push_str(&format!(" {:>14.2}", t_pp / t_pe));
            }
            println!("{row}");
        }
    }
    println!("(paper: ~2x+ on LV, ~3x+ on HV, growing with p; 2-6x overall)");
}

fn fig14(r: &mut Runner, sizes: &[usize]) {
    println!("\n== Figure 14: per-element scaling on 1/2/4/8 devices, linear polynomials ==");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12}",
        "mesh", "1 GPU (ms)", "2 GPU (ms)", "4 GPU (ms)", "8 GPU (ms)"
    );
    for &n in sizes {
        // N_GPU x N_SM patches, evenly distributed (Section 4).
        let mut cols = Vec::new();
        for &n_gpu in &[1usize, 2, 4, 8] {
            let w = Workload::build(MeshClass::LowVariance, n, 1, r.seed);
            let sol = PostProcessor::new(Scheme::PerElement)
                .blocks(16 * n_gpu)
                .h_factor(w.safe_h_factor())
                .run(&w.mesh, &w.field, &w.grid);
            let cfg = DeviceConfig {
                n_devices: n_gpu,
                ..Default::default()
            };
            cols.push(sol.simulate(&cfg).total_ms);
        }
        println!(
            "{:>8} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
            size_label(n),
            cols[0],
            cols[1],
            cols[2],
            cols[3]
        );
    }
    println!("(paper: near-perfect linear scaling in both devices and mesh size)");
}

fn main() {
    let opts = parse_args();
    let mut r = Runner::new(opts.seed);
    let sizes = &opts.sizes;
    let caps = &opts.degree_caps;

    match opts.command.as_str() {
        "table1" => table1(&mut r, sizes),
        "fig8" => fig8(&mut r, sizes),
        "fig11" => throughput_figure(
            &mut r,
            MeshClass::LowVariance,
            sizes,
            caps,
            "Figure 11: simulated GFLOP/s, low-variance meshes",
        ),
        "fig12" => throughput_figure(
            &mut r,
            MeshClass::HighVariance,
            sizes,
            caps,
            "Figure 12: simulated GFLOP/s, high-variance meshes",
        ),
        "fig13" => fig13(&mut r, sizes, caps),
        "fig14" => fig14(&mut r, sizes),
        "all" => {
            table1(&mut r, sizes);
            fig8(&mut r, sizes);
            throughput_figure(
                &mut r,
                MeshClass::LowVariance,
                sizes,
                caps,
                "Figure 11: simulated GFLOP/s, low-variance meshes",
            );
            throughput_figure(
                &mut r,
                MeshClass::HighVariance,
                sizes,
                caps,
                "Figure 12: simulated GFLOP/s, high-variance meshes",
            );
            fig13(&mut r, sizes, caps);
            fig14(&mut r, sizes);
        }
        other => {
            eprintln!(
                "unknown exhibit '{other}'; expected table1|fig8|fig11|fig12|fig13|fig14|all"
            );
            std::process::exit(2);
        }
    }
}
