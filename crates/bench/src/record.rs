//! The versioned benchmark record the `reproduce bench` command writes.
//!
//! A record is a small JSON document pinning the standard fixtures' walls
//! (minimum over `--reps` repetitions — the stable statistic under
//! scheduler noise) plus a few deterministic shape metrics per fixture,
//! stamped with the git revision it was measured at. `tools/bench_diff.py`
//! compares two records entry by entry and fails on regressions past a
//! threshold; CI keeps a committed baseline (`BENCH_baseline.json`).

use ustencil_trace::Json;

/// Version of the record layout. Bump on any change to the JSON shape so
/// `bench_diff.py` never silently compares records of different shapes.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// One fixture's measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Fixture name, e.g. `"plan.apply/64k"`.
    pub name: String,
    /// Minimum wall time over the record's repetitions, in ms.
    pub wall_ms: f64,
    /// Deterministic shape metrics (nnz, bytes on the wire, ...): equal
    /// across runs of the same code, so a diff in them means the workload
    /// itself changed, not the machine.
    pub metrics: Vec<(String, f64)>,
}

/// A full benchmark record.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// The record layout version ([`BENCH_SCHEMA_VERSION`]).
    pub schema: u64,
    /// `git rev-parse --short HEAD` at measurement time (`"unknown"`
    /// outside a git checkout).
    pub git_rev: String,
    /// Repetitions each wall is the minimum of.
    pub reps: u64,
    /// The fixtures, in execution order.
    pub entries: Vec<BenchEntry>,
}

impl BenchRecord {
    /// An empty record stamped with the current git revision.
    pub fn new(reps: usize) -> Self {
        Self {
            schema: BENCH_SCHEMA_VERSION,
            git_rev: git_rev(),
            reps: reps as u64,
            entries: Vec::new(),
        }
    }

    /// Appends one fixture measurement.
    pub fn push(&mut self, name: &str, wall_ms: f64, metrics: &[(&str, f64)]) {
        self.entries.push(BenchEntry {
            name: name.to_string(),
            wall_ms,
            metrics: metrics.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        });
    }

    /// The JSON document of this record.
    pub fn to_json(&self) -> Json {
        let entries: Vec<Json> = self
            .entries
            .iter()
            .map(|e| {
                let mut metrics = Json::object();
                for (k, v) in &e.metrics {
                    metrics = metrics.set(k, *v);
                }
                Json::object()
                    .set("name", e.name.as_str())
                    .set("wall_ms", e.wall_ms)
                    .set("metrics", metrics)
            })
            .collect();
        Json::object()
            .set("schema", self.schema)
            .set("git_rev", self.git_rev.as_str())
            .set("reps", self.reps)
            .set("entries", entries)
    }

    /// Serializes with 2-space indentation and a trailing newline.
    pub fn to_pretty_string(&self) -> String {
        self.to_json().to_pretty_string()
    }

    /// Parses a record written by [`BenchRecord::to_pretty_string`].
    /// Rejects missing keys and foreign schema versions loudly.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = Json::parse(text)?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_u64)
            .ok_or("bench record has no 'schema' key")?;
        if schema != BENCH_SCHEMA_VERSION {
            return Err(format!(
                "bench record schema version {schema} is not supported: this build \
                 reads version {BENCH_SCHEMA_VERSION}; re-record the baseline"
            ));
        }
        let git_rev = doc
            .get("git_rev")
            .and_then(Json::as_str)
            .ok_or("bench record has no 'git_rev' key")?
            .to_string();
        let reps = doc
            .get("reps")
            .and_then(Json::as_u64)
            .ok_or("bench record has no 'reps' key")?;
        let mut entries = Vec::new();
        for e in doc
            .get("entries")
            .and_then(Json::as_array)
            .ok_or("bench record has no 'entries' array")?
        {
            let name = e
                .get("name")
                .and_then(Json::as_str)
                .ok_or("bench entry has no 'name'")?
                .to_string();
            let wall_ms = e
                .get("wall_ms")
                .and_then(Json::as_f64)
                .ok_or("bench entry has no 'wall_ms'")?;
            let mut metrics = Vec::new();
            if let Some(Json::Obj(pairs)) = e.get("metrics") {
                for (k, v) in pairs {
                    let v = v
                        .as_f64()
                        .ok_or_else(|| format!("bench metric '{k}' is not a number"))?;
                    metrics.push((k.clone(), v));
                }
            }
            entries.push(BenchEntry {
                name,
                wall_ms,
                metrics,
            });
        }
        Ok(Self {
            schema,
            git_rev,
            reps,
            entries,
        })
    }
}

/// Runs `f` `reps` times and returns the minimum wall in ms plus the last
/// repetition's result (min-of-N filters scheduler noise; the result is
/// identical across repetitions for every fixture we measure).
pub fn min_of<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    assert!(reps > 0, "need at least one repetition");
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let start = std::time::Instant::now();
        let r = f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        last = Some(r);
    }
    (best, last.expect("reps > 0"))
}

/// The short git revision of the working tree, or `"unknown"` when git or
/// the repository is unavailable (records stay writable anywhere).
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_trips() {
        let mut rec = BenchRecord::new(3);
        rec.push("plan.apply/64k", 12.5, &[("nnz", 1234.0), ("rows", 99.0)]);
        rec.push("dist.fig14/16k@4ranks", 8.25, &[("bytes_sent", 4096.0)]);
        let text = rec.to_pretty_string();
        let back = BenchRecord::from_json(&text).unwrap();
        assert_eq!(back, rec);
        assert_eq!(back.entries[0].metrics[0], ("nnz".to_string(), 1234.0));
    }

    #[test]
    fn foreign_schema_is_rejected() {
        let mut rec = BenchRecord::new(1);
        rec.schema = BENCH_SCHEMA_VERSION + 1;
        let err = BenchRecord::from_json(&rec.to_pretty_string()).unwrap_err();
        assert!(err.contains("not supported"), "{err}");
        let err = BenchRecord::from_json("{}").unwrap_err();
        assert!(err.contains("schema"), "{err}");
    }

    #[test]
    fn min_of_takes_the_minimum() {
        let mut calls = 0;
        let (wall, r) = min_of(4, || {
            calls += 1;
            calls
        });
        assert_eq!(calls, 4);
        assert_eq!(r, 4);
        assert!(wall >= 0.0 && wall.is_finite());
    }
}
