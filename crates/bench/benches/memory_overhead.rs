//! Figure 8 companion bench: the reduction phase. The paper notes the
//! final summation of partial solutions "contributes a minimal amount of
//! time to the overall process" — this bench checks that claim holds here
//! by timing the reduction in isolation against a full patch execution.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use ustencil_bench::Workload;
use ustencil_core::per_element::{memory_overhead, reduce_patches, PerElementRun};
use ustencil_core::tiling::{assign_patches, two_stage_reduce};
use ustencil_mesh::{partition_recursive_bisection, MeshClass};
use ustencil_quadrature::TriangleRule;
use ustencil_siac::Stencil2d;
use ustencil_spatial::{Boundary, PointGrid};

fn bench_reduction(c: &mut Criterion) {
    let w = Workload::build(MeshClass::LowVariance, 1_000, 1, 2013);
    let stencil = Stencil2d::symmetric(1, w.mesh.max_edge_length() * w.safe_h_factor());
    let pgrid =
        PointGrid::build_half_edge(w.grid.points(), w.mesh.max_edge_length(), Boundary::Clamped);
    let rule = TriangleRule::with_strength(3);
    let run = PerElementRun {
        mesh: &w.mesh,
        field: &w.field,
        grid: &w.grid,
        stencil: &stencil,
        point_grid: &pgrid,
        rule: &rule,
        simd: ustencil_core::SimdPolicy::Auto.resolve(),
    };
    let partition = partition_recursive_bisection(&w.mesh, 16);
    let results: Vec<_> = partition.patches().map(|p| run.run_patch(p)).collect();
    let n_points = w.grid.len();

    let metrics: Vec<_> = results.iter().map(|r| r.metrics).collect();
    eprintln!(
        "fig8@1k: relative memory overhead with 16 patches = {:.3}",
        memory_overhead(&metrics, n_points)
    );

    c.bench_function("fig8/reduce_16_patches", |b| {
        b.iter(|| reduce_patches(black_box(&results), n_points))
    });
    let assignment = assign_patches(results.len(), 4);
    c.bench_function("fig8/two_stage_reduce_4_devices", |b| {
        b.iter(|| two_stage_reduce(black_box(&results), &assignment, n_points))
    });

    // Reference point: one patch of compute, to show the reduction is tiny
    // in comparison.
    let biggest = partition
        .patches()
        .max_by_key(|p| p.len())
        .unwrap()
        .to_vec();
    let mut group = c.benchmark_group("fig8_compute_reference");
    group.sample_size(10);
    group.bench_function("one_patch_compute", |b| {
        b.iter(|| black_box(run.run_patch(&biggest)))
    });
    group.finish();
}

criterion_group!(benches, bench_reduction);
criterion_main!(benches);
