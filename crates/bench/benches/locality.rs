//! Locality bench: the plan-apply SpMV under the three storage layouts.
//!
//! Compiles one plan per [`Layout`] over the same workload — `natural`
//! (grid/mesh order), `hilbert` (rows and columns permuted along the
//! Hilbert curve), `hilbert-blocked` (Hilbert order plus L2-sized row
//! tiles as the parallel work units) — and times repeated applies. The
//! per-row arithmetic is identical across layouts (reordered applies are
//! bitwise equal to natural after the inverse permutation), so any wall
//! difference is purely memory-system behaviour: the Hilbert order shrinks
//! each row's coefficient span and makes consecutive rows reuse the same
//! cache lines, and the tiles keep one work unit's span inside L2. The
//! interesting ratio is `natural / hilbert-blocked` at 64k; measured
//! values live in EXPERIMENTS.md under "Locality".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use ustencil_bench::Workload;
use ustencil_core::Layout;
use ustencil_mesh::MeshClass;
use ustencil_plan::{CompileOptions, EvalPlan};

fn bench_locality(c: &mut Criterion) {
    let mut group = c.benchmark_group("locality");
    for (n_tri, label) in [(4_000usize, "4k"), (64_000, "64k")] {
        group.sample_size(10);
        let w = Workload::build(MeshClass::LowVariance, n_tri, 1, 2013);
        for layout in Layout::ALL {
            let compile_opts = CompileOptions {
                h_factor: w.safe_h_factor(),
                layout,
                ..CompileOptions::default()
            };
            let plan = EvalPlan::compile(&w.mesh, &w.grid, w.p, &compile_opts);
            // Time the serve-time fast path: apply_into with a reused
            // output buffer, so the comparison is pure sweep cost.
            let mut out = vec![0.0; plan.rows()];
            group.bench_with_input(BenchmarkId::new(layout.label(), label), &plan, |b, plan| {
                b.iter(|| {
                    plan.apply_into(&w.field, &mut out);
                    black_box(out[0])
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_locality);
criterion_main!(benches);
