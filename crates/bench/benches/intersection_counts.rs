//! Table 1 companion bench: wall-clock cost of the intersection-search
//! phase under each scheme, at a criterion-tractable mesh size. The
//! deterministic *counts* themselves are printed by `reproduce table1`;
//! this bench tracks that the per-element search is also cheaper in time,
//! not just in test count.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use ustencil_bench::Workload;
use ustencil_core::Scheme;
use ustencil_mesh::MeshClass;

fn bench_intersection_counts(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_search");
    group.sample_size(10);
    let w = Workload::build(MeshClass::LowVariance, 1_000, 1, 2013);
    group.bench_function("per_point_1k_p1", |b| {
        b.iter(|| {
            black_box(w.run(Scheme::PerPoint, 16))
                .metrics
                .intersection_tests
        })
    });
    group.bench_function("per_element_1k_p1", |b| {
        b.iter(|| {
            black_box(w.run(Scheme::PerElement, 16))
                .metrics
                .intersection_tests
        })
    });
    group.finish();

    // Sanity print: the deterministic Table 1 ratio at this size.
    let pp = w.run(Scheme::PerPoint, 16).metrics.intersection_tests;
    let pe = w.run(Scheme::PerElement, 16).metrics.intersection_tests;
    eprintln!(
        "table1@1k: per-point {pp} vs per-element {pe} tests (ratio {:.2})",
        pp as f64 / pe as f64
    );
}

criterion_group!(benches, bench_intersection_counts);
criterion_main!(benches);
