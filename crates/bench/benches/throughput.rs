//! Figures 11/12 companion bench: end-to-end post-processing wall time for
//! both schemes at degrees 1 and 2 on a criterion-tractable low-variance
//! mesh. The simulated-GFLOP/s series of the figures are printed by
//! `reproduce fig11` / `fig12`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use ustencil_bench::Workload;
use ustencil_core::Scheme;
use ustencil_mesh::MeshClass;

fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_throughput");
    group.sample_size(10);
    // The quadratic configuration is ~8x the work per element; use a
    // smaller mesh to keep criterion's sampling tractable on one core.
    for (p, n) in [(1usize, 1_000usize), (2, 500)] {
        let w = Workload::build(MeshClass::LowVariance, n, p, 2013);
        for scheme in [Scheme::PerPoint, Scheme::PerElement] {
            group.bench_with_input(
                BenchmarkId::new(
                    scheme.label(),
                    format!("{}_p{p}", ustencil_bench::size_label(n)),
                ),
                &w,
                |b, w| b.iter(|| black_box(w.run(scheme, 16))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
