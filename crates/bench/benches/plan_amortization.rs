//! Plan-amortization bench: compile an evaluation plan once, then
//! post-process T timesteps, versus running the direct per-element scheme
//! on every one of them.
//!
//! Three series per mesh size: `build` (one plan compilation), `apply_T`
//! for T in {1, 4, 16, 64} (T field evaluations on a prebuilt plan), and
//! `direct` (one full per-element run — the cost a serving system pays
//! *per frame* without a plan). The crossover frame count is
//! `T* = ceil(build / (direct - apply_1))`; measured values live in
//! EXPERIMENTS.md under "Plan amortization".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use ustencil_bench::Workload;
use ustencil_core::{PostProcessor, Scheme};
use ustencil_mesh::MeshClass;
use ustencil_plan::{ApplyOptions, PlanExt};

/// Timestep counts the amortization sweep covers.
const TIMESTEPS: [usize; 4] = [1, 4, 16, 64];

fn bench_plan_amortization(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_amortization");
    for (n_tri, label) in [(4_000usize, "4k"), (64_000, "64k")] {
        // A 64k build runs ~50 s and a direct run ~27 s; two samples keep
        // the sweep under a few minutes while the medians stay stable.
        group.sample_size(if n_tri >= 64_000 { 2 } else { 10 });
        let w = Workload::build(MeshClass::LowVariance, n_tri, 1, 2013);
        let processor = PostProcessor::new(Scheme::PerElement)
            .blocks(16)
            .h_factor(w.safe_h_factor());
        let plan = processor.compile_plan(&w.mesh, w.p, &w.grid);
        let opts = ApplyOptions::default();

        // One plan compilation: the fixed cost a plan amortizes away.
        group.bench_with_input(BenchmarkId::new("build", label), &w, |b, w| {
            b.iter(|| black_box(processor.compile_plan(&w.mesh, w.p, &w.grid)))
        });
        // T field evaluations on the prebuilt plan: the marginal cost.
        for t in TIMESTEPS {
            group.bench_with_input(BenchmarkId::new(format!("apply_{t}"), label), &w, |b, w| {
                b.iter(|| {
                    for _ in 0..t {
                        black_box(plan.apply_with(&w.field, &opts));
                    }
                })
            });
        }
        // The per-frame baseline: a full direct run (scale by T to
        // compare against build + T * apply).
        group.bench_with_input(BenchmarkId::new("direct", label), &w, |b, w| {
            b.iter(|| black_box(w.run(Scheme::PerElement, 16)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_plan_amortization);
criterion_main!(benches);
