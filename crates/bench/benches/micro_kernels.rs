//! Micro-benchmarks of the primitives inside the evaluation hot loop:
//! polygon clipping, kernel evaluation, basis/element evaluation, exact
//! sub-region integration, plus the setup-phase builders (Delaunay, hash
//! grids, partitioning).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use ustencil_dg::{project_l2, DubinerBasis};
use ustencil_geometry::{clip_triangle_rect, Point2, Rect, Triangle};
use ustencil_mesh::{generate_mesh, partition_recursive_bisection, MeshClass};
use ustencil_quadrature::TriangleRule;
use ustencil_siac::{BSpline, Kernel1d, Stencil2d};
use ustencil_spatial::{Boundary, PointGrid, TriangleGrid};

fn bench_clip(c: &mut Criterion) {
    let tri = Triangle::new(
        Point2::new(0.1, -0.5),
        Point2::new(1.5, 0.3),
        Point2::new(0.2, 1.2),
    );
    let rect = Rect::new(0.0, 0.0, 1.0, 1.0);
    c.bench_function("clip/triangle_vs_square", |b| {
        b.iter(|| clip_triangle_rect(black_box(&tri), black_box(&rect)))
    });
    // A miss is the common case in the halo region.
    let far = Rect::new(5.0, 5.0, 6.0, 6.0);
    c.bench_function("clip/miss", |b| {
        b.iter(|| clip_triangle_rect(black_box(&tri), black_box(&far)))
    });
}

fn bench_kernels(c: &mut Criterion) {
    for k in [1usize, 2, 3] {
        let kernel = Kernel1d::symmetric(k);
        c.bench_function(&format!("siac/kernel_eval_k{k}"), |b| {
            b.iter(|| kernel.eval(black_box(0.733)))
        });
    }
    let spline = BSpline::new(4);
    c.bench_function("siac/bspline_cox_de_boor_order4", |b| {
        b.iter(|| spline.eval(black_box(0.733)))
    });
    let stencil = Stencil2d::symmetric(2, 0.05);
    let center = Point2::new(0.5, 0.5);
    c.bench_function("siac/stencil2d_eval", |b| {
        b.iter(|| stencil.eval(black_box(center), black_box(Point2::new(0.52, 0.47))))
    });
}

fn bench_basis(c: &mut Criterion) {
    for p in [1usize, 2, 3] {
        let basis = DubinerBasis::new(p);
        let coeffs: Vec<f64> = (0..basis.n_modes()).map(|m| 0.3 + m as f64).collect();
        c.bench_function(&format!("dg/eval_expansion_p{p}"), |b| {
            b.iter(|| basis.eval_expansion(black_box(&coeffs), black_box(0.31), black_box(0.24)))
        });
    }
}

fn bench_integration(c: &mut Criterion) {
    let rule = TriangleRule::with_strength(6);
    let tri = Triangle::new(
        Point2::new(0.0, 0.0),
        Point2::new(0.01, 0.002),
        Point2::new(0.003, 0.009),
    );
    c.bench_function("quadrature/strength6_subregion", |b| {
        b.iter(|| rule.integrate_physical(black_box(&tri), |x, y| (x * 31.0).sin() * y + x * x))
    });
}

fn bench_builders(c: &mut Criterion) {
    let mut group = c.benchmark_group("builders");
    group.sample_size(10);
    group.bench_function("delaunay_2k", |b| {
        b.iter(|| generate_mesh(MeshClass::LowVariance, 2_000, black_box(3)))
    });
    let mesh = generate_mesh(MeshClass::LowVariance, 2_000, 3);
    group.bench_function("triangle_grid_2k", |b| {
        b.iter(|| TriangleGrid::build(black_box(&mesh), Boundary::Periodic))
    });
    let field = project_l2(&mesh, 1, |x, y| x + y, 0);
    let grid = ustencil_core::ComputationGrid::quadrature_points(&mesh, 1);
    let _ = field;
    group.bench_function("point_grid_2k", |b| {
        b.iter(|| {
            PointGrid::build_half_edge(
                black_box(grid.points()),
                mesh.max_edge_length(),
                Boundary::Clamped,
            )
        })
    });
    group.bench_function("partition_16_of_2k", |b| {
        b.iter(|| partition_recursive_bisection(black_box(&mesh), 16))
    });
    group.finish();
}

/// The paper's Section 3 data-structure argument, measured: uniform hash
/// grid vs k-d tree for the square range queries the stencil search makes.
fn bench_spatial_ablation(c: &mut Criterion) {
    let mesh = generate_mesh(MeshClass::LowVariance, 2_000, 3);
    let grid = ustencil_core::ComputationGrid::quadrature_points(&mesh, 1);
    let s = mesh.max_edge_length();
    let hash = PointGrid::build_half_edge(grid.points(), s, Boundary::Clamped);
    let tree = ustencil_spatial::KdTree::build(grid.points());
    let bbox = ustencil_geometry::Aabb::new(Point2::new(0.4, 0.4), Point2::new(0.45, 0.44));
    let hw = 2.0 * s;
    let query = ustencil_geometry::Aabb::new(
        Point2::new(bbox.min.x - hw, bbox.min.y - hw),
        Point2::new(bbox.max.x + hw, bbox.max.y + hw),
    );
    let mut group = c.benchmark_group("spatial_ablation");
    group.bench_function("hash_grid_range_query", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            hash.for_each_candidate(black_box(&bbox), hw, |id| acc = acc.wrapping_add(id));
            acc
        })
    });
    group.bench_function("kd_tree_range_query", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            tree.query_rect(black_box(&query), |id| acc = acc.wrapping_add(id));
            acc
        })
    });
    group.finish();
}

/// Observability cost at the hot-loop call sites: a plain counter bump
/// (the seed behaviour) vs the same bump plus a disabled `Probe` record
/// (what every instrumented loop pays when tracing is off — must stay
/// within noise of the bare counter) vs an enabled probe (the price of
/// `--json`/`profile` runs).
fn bench_probe_overhead(c: &mut Criterion) {
    use ustencil_core::{Metrics, Probe};
    let mut group = c.benchmark_group("probe_overhead");
    group.bench_function("counter_only", |b| {
        let mut m = Metrics::default();
        b.iter(|| {
            for i in 0..1024u64 {
                m.quad_evals += black_box(i) & 0xf;
            }
            m.quad_evals
        })
    });
    group.bench_function("counter_plus_disabled_probe", |b| {
        let mut m = Metrics::default();
        let mut probe = Probe::new(black_box(false));
        b.iter(|| {
            for i in 0..1024u64 {
                let v = black_box(i) & 0xf;
                m.quad_evals += v;
                probe.record_quad_points(v);
            }
            m.quad_evals
        })
    });
    group.bench_function("counter_plus_enabled_probe", |b| {
        let mut m = Metrics::default();
        let mut probe = Probe::new(black_box(true));
        b.iter(|| {
            for i in 0..1024u64 {
                let v = black_box(i) & 0xf;
                m.quad_evals += v;
                probe.record_quad_points(v);
            }
            m.quad_evals
        })
    });
    group.finish();
}

/// The element-image integration strategies head to head, over one
/// realistic stencil query's worth of elements per polynomial degree
/// `k in {1, 2, 3}` (the mode count — 3, 6, 10 — is what the lane
/// kernels batch over, so the staged/SIMD win must be measured where it
/// differs): the pre-refactor fused evaluation (kernel × full basis
/// expansion at every quadrature point, reconstructed here from the
/// public primitives), the staged SoA cells-then-modes path with the
/// vector reduction forced off, and the same staged path on the widest
/// ISA the host supports.
fn bench_integration_kernel(c: &mut Criterion) {
    use ustencil_core::integrate::{ElementData, IntegrationCtx};
    use ustencil_core::kernel::{AccumulateSolution, QuadStage, StencilTraversal};
    use ustencil_core::{Metrics, SimdIsa, SimdPolicy};
    use ustencil_geometry::{fan_triangulate, Vec2, GEOM_EPS};

    let mesh = generate_mesh(MeshClass::LowVariance, 200, 7);
    for k in [1usize, 2, 3] {
        let field = project_l2(&mesh, k, |x, y| (x * 3.0).sin() + y * y - 0.3 * x * y, 1);
        let basis = field.basis().clone();
        let stencil = Stencil2d::symmetric(k, mesh.max_edge_length());
        let rule = TriangleRule::with_strength(IntegrationCtx::required_strength(k, k));
        let exps = basis.monomial_exponents();
        let center = Point2::new(0.5, 0.5);
        let support = stencil.support_rect(center);
        // The elements one central query actually touches, gathered up
        // front so every variant measures pure integration.
        let elems: Vec<ElementData> = (0..mesh.n_triangles())
            .map(|e| ElementData::gather(&mesh, &field, &basis, e))
            .filter(|ed| support.intersects_aabb(&ed.bbox))
            .collect();
        assert!(!elems.is_empty());

        let mut group = c.benchmark_group(&format!("integration_kernel_k{k}"));
        group.bench_function("fused_closure", |b| {
            b.iter(|| {
                let mut total = 0.0;
                for ed in &elems {
                    let h = stencil.h();
                    let n_cells = stencil.cells_per_side();
                    let (lo, _) = stencil.kernel().support();
                    let x_base = center.x + lo * h;
                    let y_base = center.y + lo * h;
                    let bbox = &ed.bbox;
                    let i0 = (((bbox.min.x - x_base) / h).floor().max(0.0)) as usize;
                    let j0 = (((bbox.min.y - y_base) / h).floor().max(0.0)) as usize;
                    if i0 >= n_cells || j0 >= n_cells || bbox.max.x < x_base || bbox.max.y < y_base
                    {
                        continue;
                    }
                    let i1 = ((((bbox.max.x - x_base) / h).floor()) as usize).min(n_cells - 1);
                    let j1 = ((((bbox.max.y - y_base) / h).floor()) as usize).min(n_cells - 1);
                    for j in j0..=j1 {
                        for i in i0..=i1 {
                            let cell = stencil.cell_rect(black_box(center), i, j);
                            let poly = clip_triangle_rect(&ed.tri, &cell);
                            if poly.is_degenerate(GEOM_EPS) {
                                continue;
                            }
                            for sub in fan_triangulate(&poly) {
                                total += rule.integrate_physical(&sub, |x, y| {
                                    let p = Point2::new(x, y);
                                    stencil.eval(center, p) * ed.eval(p, exps)
                                });
                            }
                        }
                    }
                }
                total
            })
        });
        for (variant, isa) in [
            ("staged_scalar", SimdIsa::Scalar),
            ("staged_simd", SimdPolicy::Auto.resolve()),
        ] {
            group.bench_function(variant, |b| {
                let trav =
                    StencilTraversal::new(&stencil, &rule, exps, basis.n_modes()).with_simd(isa);
                let mut stage = QuadStage::default();
                let mut metrics = Metrics::default();
                let mut sink = AccumulateSolution::new();
                b.iter(|| {
                    let mut total = 0.0;
                    for ed in &elems {
                        trav.integrate_image(
                            black_box(center),
                            ed,
                            Vec2::ZERO,
                            &mut stage,
                            &mut sink,
                            &mut metrics,
                        );
                        total += sink.take();
                    }
                    total
                })
            });
        }
        group.finish();
    }
}

criterion_group!(
    benches,
    bench_clip,
    bench_kernels,
    bench_basis,
    bench_integration,
    bench_integration_kernel,
    bench_builders,
    bench_spatial_ablation,
    bench_probe_overhead
);
criterion_main!(benches);
