//! Figure 14 companion bench: tiling-granularity ablation. The paper
//! scales by giving each device `N_SM` patches; here we measure how the
//! patch count affects end-to-end wall time on the host (more patches =
//! more scheduling freedom but more overlap work), plus the pure simulated
//! multi-device scaling which `reproduce fig14` prints.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use ustencil_bench::Workload;
use ustencil_core::{DeviceConfig, Scheme};
use ustencil_mesh::MeshClass;

fn bench_patch_granularity(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14_patch_granularity");
    group.sample_size(10);
    let w = Workload::build(MeshClass::LowVariance, 1_000, 1, 2013);
    for blocks in [1usize, 4, 16, 64] {
        group.bench_with_input(
            BenchmarkId::new("per_element_1k_p1", blocks),
            &blocks,
            |b, &blocks| b.iter(|| black_box(w.run(Scheme::PerElement, blocks))),
        );
    }
    group.finish();
}

fn bench_device_simulation(c: &mut Criterion) {
    // The cost-model evaluation itself (pure function of metrics) — this is
    // what fig14 sweeps, so its cost should be negligible.
    let w = Workload::build(MeshClass::LowVariance, 1_000, 1, 2013);
    let sol = w.run(Scheme::PerElement, 128);
    let mut group = c.benchmark_group("fig14_simulate");
    for n_devices in [1usize, 8] {
        let cfg = DeviceConfig {
            n_devices,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new("devices", n_devices), &cfg, |b, cfg| {
            b.iter(|| black_box(sol.simulate(cfg)).total_ms)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_patch_granularity, bench_device_simulation);
criterion_main!(benches);
