//! Figure 13 companion bench: per-point vs per-element wall time on the
//! low- and high-variance mesh classes, whose ratio is the "relative
//! speedup" the paper plots (the simulated-device ratios are printed by
//! `reproduce fig13`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use ustencil_bench::Workload;
use ustencil_core::Scheme;
use ustencil_mesh::MeshClass;

fn bench_speedup(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13_speedup");
    group.sample_size(10);
    for (class, label) in [
        (MeshClass::LowVariance, "lv"),
        (MeshClass::HighVariance, "hv"),
    ] {
        let w = Workload::build(class, 1_000, 1, 2013);
        for scheme in [Scheme::PerPoint, Scheme::PerElement] {
            group.bench_with_input(
                BenchmarkId::new(scheme.label(), format!("{label}_1k_p1")),
                &w,
                |b, w| b.iter(|| black_box(w.run(scheme, 16))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_speedup);
criterion_main!(benches);
