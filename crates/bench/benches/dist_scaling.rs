//! Rank-scaling bench: the sharded per-element runtime end to end — shard
//! build, halo exchange over the in-process channel fabric, local patch
//! evaluation on real threads, and the gather — at the small and large
//! ends of the default mesh ladder. The interesting ratio is wall time at
//! 4 ranks vs 1 rank: ideal is 1/4 plus the (counted) halo-exchange cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use ustencil_bench::Workload;
use ustencil_dist::{run_dist, DistOptions};
use ustencil_mesh::MeshClass;

fn bench_rank_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("dist_rank_scaling");
    group.sample_size(10);
    for &n_tri in &[4_000usize, 64_000] {
        let w = Workload::build(MeshClass::LowVariance, n_tri, 1, 2013);
        for &ranks in &[1usize, 4] {
            let opts = DistOptions::new(ranks).h_factor(w.safe_h_factor());
            group.bench_with_input(
                BenchmarkId::new(format!("{}k_p1", n_tri / 1000), ranks),
                &opts,
                |b, opts| b.iter(|| black_box(run_dist(&w.mesh, &w.field, &w.grid, opts).unwrap())),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_rank_scaling);
criterion_main!(benches);
