//! Central B-splines.

use ustencil_quadrature::GaussLegendre;

/// The central B-spline `ψ^{(n)}` of order `n` (polynomial degree `n - 1`),
/// supported on `[-n/2, n/2]` with unit integral.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BSpline {
    order: u32,
}

impl BSpline {
    /// B-spline of the given order (`>= 1`).
    ///
    /// # Panics
    /// Panics for order 0.
    pub fn new(order: u32) -> Self {
        assert!(order >= 1, "B-spline order must be at least 1");
        Self { order }
    }

    /// The order `n` (one more than the polynomial degree).
    #[inline]
    pub fn order(&self) -> u32 {
        self.order
    }

    /// Polynomial degree of each piece.
    #[inline]
    pub fn degree(&self) -> u32 {
        self.order - 1
    }

    /// Half-width of the support: the spline vanishes outside
    /// `[-order/2, order/2]`.
    #[inline]
    pub fn support_radius(&self) -> f64 {
        self.order as f64 / 2.0
    }

    /// Evaluates `ψ^{(n)}(x)` by the central Cox–de Boor recurrence
    ///
    /// `(n-1) ψ_n(x) = (x + n/2) ψ_{n-1}(x + 1/2) + (n/2 - x) ψ_{n-1}(x - 1/2)`.
    ///
    /// Pieces meet with half-open `[lo, hi)` semantics, so breakpoint values
    /// take the right-hand limit (irrelevant under integration).
    pub fn eval(&self, x: f64) -> f64 {
        eval_rec(self.order, x)
    }

    /// The `order + 1` breakpoints of the piecewise polynomial:
    /// `-n/2, -n/2 + 1, ..., n/2`.
    pub fn breakpoints(&self) -> Vec<f64> {
        let half = self.support_radius();
        (0..=self.order).map(|j| -half + j as f64).collect()
    }

    /// Exact `j`-th moment `∫ x^j ψ(x) dx`, integrated piece by piece with
    /// Gauss rules of sufficient strength.
    pub fn moment(&self, j: u32) -> f64 {
        let rule = GaussLegendre::with_strength((j + self.degree()) as usize);
        let breaks = self.breakpoints();
        breaks
            .windows(2)
            .map(|w| rule.integrate_on(w[0], w[1], |x| x.powi(j as i32) * self.eval(x)))
            .sum()
    }
}

fn eval_rec(order: u32, x: f64) -> f64 {
    if order == 1 {
        // Indicator of [-1/2, 1/2).
        return if (-0.5..0.5).contains(&x) { 1.0 } else { 0.0 };
    }
    let n = order as f64;
    let half = n / 2.0;
    if !(-half..half).contains(&x) {
        return 0.0;
    }
    ((x + half) * eval_rec(order - 1, x + 0.5) + (half - x) * eval_rec(order - 1, x - 0.5))
        / (n - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_one_is_box() {
        let b = BSpline::new(1);
        assert_eq!(b.eval(0.0), 1.0);
        assert_eq!(b.eval(0.49), 1.0);
        assert_eq!(b.eval(0.51), 0.0);
        assert_eq!(b.eval(-0.5), 1.0); // half-open left-closed
        assert_eq!(b.eval(0.5), 0.0);
    }

    #[test]
    fn order_two_is_hat() {
        let b = BSpline::new(2);
        assert!((b.eval(0.0) - 1.0).abs() < 1e-15);
        assert!((b.eval(0.5) - 0.5).abs() < 1e-15);
        assert!((b.eval(-0.75) - 0.25).abs() < 1e-15);
        assert_eq!(b.eval(1.0), 0.0);
        assert_eq!(b.eval(-1.1), 0.0);
    }

    #[test]
    fn order_three_known_values() {
        // Quadratic B-spline: ψ(0) = 3/4, ψ(±1) = 1/8.
        let b = BSpline::new(3);
        assert!((b.eval(0.0) - 0.75).abs() < 1e-15);
        assert!((b.eval(1.0) - 0.125).abs() < 1e-14);
        assert!((b.eval(-1.0) - 0.125).abs() < 1e-14);
        assert_eq!(b.eval(1.5), 0.0);
    }

    #[test]
    fn unit_integral_for_all_orders() {
        for order in 1..=6 {
            let b = BSpline::new(order);
            assert!(
                (b.moment(0) - 1.0).abs() < 1e-13,
                "order {order}: {}",
                b.moment(0)
            );
        }
    }

    #[test]
    fn odd_moments_vanish_by_symmetry() {
        for order in 1..=5 {
            let b = BSpline::new(order);
            for j in [1u32, 3, 5] {
                assert!(b.moment(j).abs() < 1e-13, "order {order} moment {j}");
            }
        }
    }

    #[test]
    fn second_moment_is_order_over_twelve() {
        // Var of the sum of n independent U(-1/2, 1/2) is n/12.
        for order in 1..=5u32 {
            let b = BSpline::new(order);
            let want = order as f64 / 12.0;
            assert!(
                (b.moment(2) - want).abs() < 1e-13,
                "order {order}: {} vs {want}",
                b.moment(2)
            );
        }
    }

    #[test]
    fn symmetry_of_evaluation() {
        for order in 1..=5 {
            let b = BSpline::new(order);
            for i in 1..40 {
                let x = i as f64 * 0.07;
                assert!(
                    (b.eval(x) - b.eval(-x)).abs() < 1e-14,
                    "order {order} x={x}"
                );
            }
        }
    }

    #[test]
    fn support_and_breakpoints() {
        let b = BSpline::new(4);
        assert_eq!(b.support_radius(), 2.0);
        assert_eq!(b.breakpoints(), vec![-2.0, -1.0, 0.0, 1.0, 2.0]);
        assert_eq!(b.eval(2.0), 0.0);
        assert!(b.eval(1.999) > 0.0);
    }

    #[test]
    fn partition_of_unity_on_integer_shifts() {
        // Central B-splines shifted by integers sum to 1 — for even orders
        // at every x, for odd orders at x shifted by 1/2 alignment too; test
        // even order on generic points.
        let b = BSpline::new(4);
        for i in 0..20 {
            let x = -1.0 + i as f64 * 0.1;
            let sum: f64 = (-5..=5).map(|s| b.eval(x - s as f64)).sum();
            assert!((sum - 1.0).abs() < 1e-13, "x={x} sum={sum}");
        }
    }

    #[test]
    #[should_panic(expected = "order must be at least 1")]
    fn zero_order_panics() {
        let _ = BSpline::new(0);
    }
}
