//! The 1D SIAC convolution kernel.

use crate::bspline::BSpline;
use ustencil_quadrature::linalg::solve_dense;
use ustencil_quadrature::GaussLegendre;

/// The SIAC kernel `K^{2k+1, k+1}`: `2k + 1` central B-splines of order
/// `k + 1` on a unit-spaced node lattice, with coefficients solving the
/// moment conditions so that convolution reproduces polynomials of degree
/// `<= 2k`.
///
/// The kernel is *compiled* into a piecewise-polynomial table over its
/// `3k + 1` unit cells: evaluation is a cell lookup plus a Horner step, and
/// the cells are exactly the stencil lattice of the paper's Figure 5 — no
/// quadrature sub-interval ever straddles a kernel breakpoint.
///
/// A non-zero `node_offset` shifts the whole node lattice, which is how the
/// one-sided boundary kernels of [`crate::onesided`] are built; the moment
/// conditions (and therefore polynomial reproduction) hold for any offset.
#[derive(Debug, Clone)]
pub struct Kernel1d {
    k: usize,
    coeffs: Vec<f64>,
    node_offset: f64,
    /// Left end of the support, `-(3k+1)/2 + node_offset`.
    lo: f64,
    /// Piecewise polynomial in the local cell coordinate `t ∈ [0, 1]`,
    /// row-major `[cell][degree]`, `k + 1` coefficients per cell.
    pp: Vec<f64>,
}

impl Kernel1d {
    /// The symmetric kernel for smoothness parameter `k` (equal to the dG
    /// polynomial degree in the paper's setup).
    ///
    /// ```
    /// use ustencil_siac::Kernel1d;
    /// let kernel = Kernel1d::symmetric(1);
    /// // The classic K^{3,2} coefficients: (-1/12, 7/6, -1/12).
    /// assert!((kernel.coefficients()[1] - 7.0 / 6.0).abs() < 1e-12);
    /// // Unit mass, vanishing higher moments.
    /// assert!((kernel.moment(0) - 1.0).abs() < 1e-11);
    /// assert!(kernel.moment(2).abs() < 1e-11);
    /// ```
    pub fn symmetric(k: usize) -> Self {
        Self::with_node_offset(k, 0.0)
    }

    /// A kernel whose B-spline node lattice is shifted by `node_offset`
    /// (in units of the mesh scale `h`). Used for one-sided boundary
    /// filtering; `node_offset = 0` recovers the symmetric kernel.
    pub fn with_node_offset(k: usize, node_offset: f64) -> Self {
        let r = 2 * k;
        let spline = BSpline::new(k as u32 + 1);
        let nodes: Vec<f64> = (0..=r)
            .map(|g| -(r as f64) / 2.0 + g as f64 + node_offset)
            .collect();

        // Raw B-spline moments mu_i = ∫ t^i ψ(t) dt.
        let mu: Vec<f64> = (0..=r as u32).map(|i| spline.moment(i)).collect();

        // Moments of each shifted spline: m_j(x_γ) = Σ_i C(j,i) x_γ^{j-i} μ_i.
        let n = r + 1;
        let mut matrix = vec![0.0; n * n];
        let mut rhs = vec![0.0; n];
        rhs[0] = 1.0;
        for j in 0..n {
            for (g, &xg) in nodes.iter().enumerate() {
                let mut m = 0.0;
                let mut binom = 1.0;
                for (i, &mui) in mu.iter().enumerate().take(j + 1) {
                    m += binom * xg.powi((j - i) as i32) * mui;
                    binom *= (j - i) as f64 / (i + 1) as f64;
                }
                matrix[j * n + g] = m;
            }
        }
        let coeffs =
            solve_dense(&mut matrix, &mut rhs, n).expect("SIAC moment system is nonsingular");

        // Compile the piecewise polynomial: interpolate K on k+1 points per
        // unit cell (K restricted to a cell is a degree-k polynomial).
        let n_cells = 3 * k + 1;
        let lo = -((3 * k + 1) as f64) / 2.0 + node_offset;
        let deg = k + 1;
        let mut pp = vec![0.0; n_cells * deg];
        let direct = |x: f64| -> f64 {
            nodes
                .iter()
                .zip(&coeffs)
                .map(|(&xg, &c)| c * spline.eval(x - xg))
                .sum()
        };
        for cell in 0..n_cells {
            let x0 = lo + cell as f64;
            let mut vand = vec![0.0; deg * deg];
            let mut vals = vec![0.0; deg];
            for row in 0..deg {
                // Interior sample points avoid breakpoint ambiguity.
                let t = (row as f64 + 0.5) / deg as f64;
                for (col, v) in vand[row * deg..(row + 1) * deg].iter_mut().enumerate() {
                    *v = t.powi(col as i32);
                }
                vals[row] = direct(x0 + t);
            }
            let local =
                solve_dense(&mut vand, &mut vals, deg).expect("cell interpolation is unisolvent");
            pp[cell * deg..(cell + 1) * deg].copy_from_slice(&local);
        }

        Self {
            k,
            coeffs,
            node_offset,
            lo,
            pp,
        }
    }

    /// Smoothness parameter `k`.
    #[inline]
    pub fn smoothness(&self) -> usize {
        self.k
    }

    /// Polynomial degree reproduced by convolution, `r = 2k`.
    #[inline]
    pub fn reproduction_degree(&self) -> usize {
        2 * self.k
    }

    /// B-spline coefficients `c_γ`.
    #[inline]
    pub fn coefficients(&self) -> &[f64] {
        &self.coeffs
    }

    /// The node-lattice offset (zero for the symmetric kernel).
    #[inline]
    pub fn node_offset(&self) -> f64 {
        self.node_offset
    }

    /// Number of unit cells of the support, `3k + 1`.
    #[inline]
    pub fn n_cells(&self) -> usize {
        3 * self.k + 1
    }

    /// Support interval `[lo, hi]` in kernel coordinates.
    #[inline]
    pub fn support(&self) -> (f64, f64) {
        (self.lo, self.lo + self.n_cells() as f64)
    }

    /// The compiled piecewise-polynomial table, row-major `[cell][degree]`
    /// with `k + 1` coefficients per unit cell — the raw form lane-batched
    /// evaluators gather from ([`eval`](Self::eval) is the scalar reference
    /// reading of the same table).
    #[inline]
    pub fn piecewise_table(&self) -> &[f64] {
        &self.pp
    }

    /// Kernel value at `x` (kernel coordinates, i.e. physical offset / `h`).
    #[inline]
    pub fn eval(&self, x: f64) -> f64 {
        let rel = x - self.lo;
        if rel < 0.0 {
            return 0.0;
        }
        let cell = rel as usize;
        if cell >= self.n_cells() {
            return 0.0;
        }
        let t = rel - cell as f64;
        let deg = self.k + 1;
        let poly = &self.pp[cell * deg..(cell + 1) * deg];
        // Horner in the local coordinate.
        let mut acc = poly[deg - 1];
        for &c in poly[..deg - 1].iter().rev() {
            acc = acc * t + c;
        }
        acc
    }

    /// Derivative `K'(x)` of the kernel, from the compiled piecewise
    /// polynomial (exact inside each lattice cell; breakpoint values take
    /// the right-hand limit, irrelevant under integration).
    ///
    /// Used for SIAC *derivative recovery*: filtering a dG field against
    /// `K'` yields an accurate derivative even though the raw field is
    /// discontinuous — integrating by parts,
    /// `d/dx u*(x) = -(1/h) ∫ K'(s) u(x + h s) ds`.
    #[inline]
    pub fn eval_deriv(&self, x: f64) -> f64 {
        let rel = x - self.lo;
        if rel < 0.0 {
            return 0.0;
        }
        let cell = rel as usize;
        if cell >= self.n_cells() {
            return 0.0;
        }
        let t = rel - cell as f64;
        let deg = self.k + 1;
        let poly = &self.pp[cell * deg..(cell + 1) * deg];
        // Horner on the derivative coefficients d_i = (i+1) * c_{i+1}.
        let mut acc = 0.0;
        for (i, &c) in poly.iter().enumerate().skip(1).rev() {
            acc = acc * t + i as f64 * c;
        }
        acc
    }

    /// Slow reference evaluation straight from the B-spline definition
    /// (used in tests and kept public for cross-validation).
    pub fn eval_direct(&self, x: f64) -> f64 {
        let spline = BSpline::new(self.k as u32 + 1);
        let r = 2 * self.k;
        self.coeffs
            .iter()
            .enumerate()
            .map(|(g, &c)| {
                let xg = -(r as f64) / 2.0 + g as f64 + self.node_offset;
                c * spline.eval(x - xg)
            })
            .sum()
    }

    /// Exact `j`-th kernel moment, cell-by-cell Gauss integration.
    pub fn moment(&self, j: u32) -> f64 {
        let rule = GaussLegendre::with_strength(j as usize + self.k);
        (0..self.n_cells())
            .map(|c| {
                let a = self.lo + c as f64;
                rule.integrate_on(a, a + 1.0, |x| x.powi(j as i32) * self.eval(x))
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_coefficients_for_k1() {
        // Classic K^{3,2} coefficients: (-1/12, 7/6, -1/12).
        let kernel = Kernel1d::symmetric(1);
        let c = kernel.coefficients();
        assert!((c[0] + 1.0 / 12.0).abs() < 1e-12, "{c:?}");
        assert!((c[1] - 7.0 / 6.0).abs() < 1e-12, "{c:?}");
        assert!((c[2] + 1.0 / 12.0).abs() < 1e-12, "{c:?}");
    }

    #[test]
    fn k0_kernel_is_box() {
        let kernel = Kernel1d::symmetric(0);
        assert_eq!(kernel.n_cells(), 1);
        assert!((kernel.eval(0.0) - 1.0).abs() < 1e-13);
        assert_eq!(kernel.eval(0.6), 0.0);
    }

    #[test]
    fn moment_conditions_hold() {
        for k in 0..=3usize {
            let kernel = Kernel1d::symmetric(k);
            assert!(
                (kernel.moment(0) - 1.0).abs() < 1e-11,
                "k={k} mass {}",
                kernel.moment(0)
            );
            for j in 1..=(2 * k as u32) {
                assert!(
                    kernel.moment(j).abs() < 1e-10,
                    "k={k} moment {j} = {}",
                    kernel.moment(j)
                );
            }
        }
    }

    #[test]
    fn symmetric_kernel_is_even() {
        for k in 1..=3usize {
            let kernel = Kernel1d::symmetric(k);
            for i in 1..60 {
                let x = i as f64 * 0.08;
                assert!(
                    (kernel.eval(x) - kernel.eval(-x)).abs() < 1e-11,
                    "k={k} x={x}"
                );
            }
            // Coefficient symmetry c_γ = c_{r-γ}.
            let c = kernel.coefficients();
            for g in 0..c.len() {
                assert!((c[g] - c[c.len() - 1 - g]).abs() < 1e-11);
            }
        }
    }

    #[test]
    fn compiled_form_matches_direct_evaluation() {
        for k in 0..=3usize {
            let kernel = Kernel1d::symmetric(k);
            let (lo, hi) = kernel.support();
            let n = 200;
            for i in 0..n {
                // Skip breakpoints (left/right limit ambiguity).
                let x = lo + (hi - lo) * (i as f64 + 0.37) / n as f64;
                let fast = kernel.eval(x);
                let slow = kernel.eval_direct(x);
                assert!((fast - slow).abs() < 1e-10, "k={k} x={x}: {fast} vs {slow}");
            }
        }
    }

    #[test]
    fn support_width_is_3k_plus_1() {
        for k in 0..=3usize {
            let kernel = Kernel1d::symmetric(k);
            let (lo, hi) = kernel.support();
            assert!((hi - lo - (3 * k + 1) as f64).abs() < 1e-15);
            assert!((lo + hi).abs() < 1e-15, "symmetric support centered");
            assert_eq!(kernel.eval(hi + 0.01), 0.0);
            assert_eq!(kernel.eval(lo - 0.01), 0.0);
        }
    }

    #[test]
    fn convolution_reproduces_polynomials() {
        // u*(x) = ∫ K(s) u(x + h s) ds must equal u(x) for deg(u) <= 2k.
        let h = 0.37;
        for k in 1..=3usize {
            let kernel = Kernel1d::symmetric(k);
            let rule = GaussLegendre::with_strength(3 * k + 2);
            for deg in 0..=(2 * k) {
                let u = |y: f64| (y - 0.3).powi(deg as i32);
                let x = 0.85;
                let mut acc = 0.0;
                for c in 0..kernel.n_cells() {
                    let a = kernel.support().0 + c as f64;
                    acc += rule.integrate_on(a, a + 1.0, |s| kernel.eval(s) * u(x + h * s));
                }
                assert!(
                    (acc - u(x)).abs() < 1e-10,
                    "k={k} deg={deg}: {acc} vs {}",
                    u(x)
                );
            }
        }
    }

    #[test]
    fn degree_2k_plus_1_is_not_reproduced() {
        // Tightness: one degree past the guarantee fails.
        let k = 1;
        let kernel = Kernel1d::symmetric(k);
        let rule = GaussLegendre::with_strength(3 * k + 4);
        let h = 0.5;
        let u = |y: f64| y.powi(2 * k as i32 + 2); // even power: no parity rescue
        let x = 0.8;
        let mut acc = 0.0;
        for c in 0..kernel.n_cells() {
            let a = kernel.support().0 + c as f64;
            acc += rule.integrate_on(a, a + 1.0, |s| kernel.eval(s) * u(x + h * s));
        }
        assert!((acc - u(x)).abs() > 1e-6);
    }

    #[test]
    fn derivative_matches_finite_differences() {
        for k in 1..=3usize {
            let kernel = Kernel1d::symmetric(k);
            let (lo, hi) = kernel.support();
            let fd_h = 1e-6;
            for i in 0..60 {
                // Interior sample points away from breakpoints.
                let x = lo + (hi - lo) * (i as f64 + 0.43) / 60.0;
                let frac = (x - lo).fract();
                if !(1e-3..=1.0 - 1e-3).contains(&frac) {
                    continue;
                }
                let fd = (kernel.eval(x + fd_h) - kernel.eval(x - fd_h)) / (2.0 * fd_h);
                let got = kernel.eval_deriv(x);
                assert!(
                    (got - fd).abs() < 1e-5 * (1.0 + fd.abs()),
                    "k={k} x={x}: {got} vs {fd}"
                );
            }
        }
    }

    #[test]
    fn derivative_integrates_to_zero_and_recovers_mass() {
        // ∫K' = 0 (K vanishes at the support ends) and ∫ x K'(x) dx = -1
        // (integration by parts against ∫K = 1).
        for k in 1..=3usize {
            let kernel = Kernel1d::symmetric(k);
            let rule = GaussLegendre::with_strength(k + 2);
            let (lo, _) = kernel.support();
            let mut m0 = 0.0;
            let mut m1 = 0.0;
            for c in 0..kernel.n_cells() {
                let a = lo + c as f64;
                m0 += rule.integrate_on(a, a + 1.0, |x| kernel.eval_deriv(x));
                m1 += rule.integrate_on(a, a + 1.0, |x| x * kernel.eval_deriv(x));
            }
            assert!(m0.abs() < 1e-10, "k={k}: ∫K' = {m0}");
            assert!((m1 + 1.0).abs() < 1e-10, "k={k}: ∫xK' = {m1}");
        }
    }

    #[test]
    fn offset_kernel_still_reproduces() {
        let h = 0.25;
        let k = 2usize;
        let kernel = Kernel1d::with_node_offset(k, 1.75);
        let rule = GaussLegendre::with_strength(3 * k + 2);
        for deg in 0..=(2 * k) {
            let u = |y: f64| (y + 0.1).powi(deg as i32);
            let x = 0.4;
            let mut acc = 0.0;
            for c in 0..kernel.n_cells() {
                let a = kernel.support().0 + c as f64;
                acc += rule.integrate_on(a, a + 1.0, |s| kernel.eval(s) * u(x + h * s));
            }
            assert!((acc - u(x)).abs() < 1e-9, "deg={deg}: {acc} vs {}", u(x));
        }
        // Support is shifted.
        let (lo, hi) = kernel.support();
        assert!((lo - (-3.5 + 1.75)).abs() < 1e-14);
        assert!((hi - (3.5 + 1.75)).abs() < 1e-14);
    }
}
