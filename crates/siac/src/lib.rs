//! Smoothness-increasing accuracy-conserving (SIAC) convolution kernels.
//!
//! The post-processor of the paper convolves a dG solution against
//!
//! ```text
//! K^{r+1, k+1}(x) = sum_{γ=0}^{r} c_γ ψ^{(k+1)}(x - x_γ),   x_γ = -r/2 + γ,
//! ```
//!
//! a linear combination of `r + 1 = 2k + 1` central B-splines of order
//! `k + 1` centered on an integer lattice (Section 2.2). The coefficients
//! `c_γ` are fixed by requiring the kernel to reproduce polynomials of
//! degree up to `r = 2k` under convolution, equivalently by the moment
//! conditions `μ_0(K) = 1`, `μ_j(K) = 0` for `j = 1..r`.
//!
//! This crate provides:
//!
//! * [`bspline`] — central B-splines: Cox–de Boor evaluation, breakpoints,
//!   exact moments,
//! * [`kernel`] — the 1D symmetric SIAC kernel with coefficients solved from
//!   the moment conditions and a piecewise-polynomial compiled form for fast
//!   exact evaluation,
//! * [`onesided`] — position-dependent one-sided kernels for non-periodic
//!   boundaries (Ryan–Shu), the paper's cited alternative to periodic wrap,
//! * [`stencil`] — the 2D tensor-product stencil geometry: the
//!   `(3k+1) x (3k+1)` lattice of squares of side `h` (Figure 5) whose
//!   cells never cross a kernel breakpoint.

#![deny(missing_docs)]

pub mod bspline;
pub mod filter1d;
pub mod kernel;
pub mod onesided;
pub mod stencil;

pub use bspline::BSpline;
pub use filter1d::LineField;
pub use kernel::Kernel1d;
pub use onesided::OneSidedKernel;
pub use stencil::Stencil2d;
