//! Position-dependent one-sided kernels for non-periodic boundaries.
//!
//! When the stencil support would overhang a non-periodic domain boundary,
//! the paper (citing Ryan–Shu) replaces the symmetric kernel with a shifted,
//! one-sided kernel whose support stays inside the domain. This module
//! implements the node-lattice-shift construction: the B-spline nodes are
//! translated just enough to pull the support inside `[0, 1]`, and the
//! moment conditions are re-solved for the shifted lattice, preserving
//! polynomial reproduction of degree `2k`.

use crate::kernel::Kernel1d;

/// Factory for boundary-aware 1D kernels along one axis.
#[derive(Debug, Clone)]
pub struct OneSidedKernel {
    k: usize,
    symmetric: Kernel1d,
}

impl OneSidedKernel {
    /// Builds the factory for smoothness `k`.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            symmetric: Kernel1d::symmetric(k),
        }
    }

    /// Smoothness parameter.
    #[inline]
    pub fn smoothness(&self) -> usize {
        self.k
    }

    /// The symmetric interior kernel.
    #[inline]
    pub fn symmetric(&self) -> &Kernel1d {
        &self.symmetric
    }

    /// Kernel to use at coordinate `x` of the unit interval with mesh scale
    /// `h`: symmetric when the support fits, otherwise shifted inward by the
    /// smallest sufficient offset.
    ///
    /// Returns `None` when no shift can fit the support inside the domain
    /// (stencil wider than the domain).
    pub fn for_position(&self, x: f64, h: f64) -> Option<Kernel1d> {
        let half_width = (3 * self.k + 1) as f64 / 2.0;
        if half_width * 2.0 * h > 1.0 {
            return None;
        }
        // Sample interval is [x + h*lo, x + h*hi] with lo = -half + offset.
        let min_offset = half_width - x / h; // require x + h*lo >= 0
        let max_offset = (1.0 - x) / h - half_width; // require x + h*hi <= 1
        let offset = if min_offset > 0.0 {
            min_offset
        } else if max_offset < 0.0 {
            max_offset
        } else {
            return Some(self.symmetric.clone());
        };
        Some(Kernel1d::with_node_offset(self.k, offset))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interior_points_get_the_symmetric_kernel() {
        let osk = OneSidedKernel::new(1);
        let h = 0.05;
        let kernel = osk.for_position(0.5, h).unwrap();
        assert_eq!(kernel.node_offset(), 0.0);
    }

    #[test]
    fn near_left_boundary_shifts_right() {
        let osk = OneSidedKernel::new(1);
        let h = 0.05;
        let kernel = osk.for_position(0.02, h).unwrap();
        assert!(kernel.node_offset() > 0.0);
        // Support must fit inside the domain.
        let (lo, hi) = kernel.support();
        assert!(0.02 + h * lo >= -1e-12);
        assert!(0.02 + h * hi <= 1.0 + 1e-12);
    }

    #[test]
    fn near_right_boundary_shifts_left() {
        let osk = OneSidedKernel::new(2);
        let h = 0.04;
        let kernel = osk.for_position(0.97, h).unwrap();
        assert!(kernel.node_offset() < 0.0);
        let (lo, hi) = kernel.support();
        assert!(0.97 + h * lo >= -1e-12);
        assert!(0.97 + h * hi <= 1.0 + 1e-12);
    }

    #[test]
    fn too_wide_stencil_is_rejected() {
        let osk = OneSidedKernel::new(3);
        // width = 10 h > 1 for h = 0.2.
        assert!(osk.for_position(0.5, 0.2).is_none());
    }

    #[test]
    fn shifted_kernel_keeps_unit_mass() {
        let osk = OneSidedKernel::new(2);
        let kernel = osk.for_position(0.01, 0.03).unwrap();
        assert!((kernel.moment(0) - 1.0).abs() < 1e-10);
        for j in 1..=4 {
            assert!(kernel.moment(j).abs() < 1e-9, "moment {j}");
        }
    }
}
