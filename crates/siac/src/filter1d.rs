//! A complete 1D SIAC filter over line data — the setting in which the
//! post-processor is usually introduced (Section 2.2's one-dimensional
//! formula), kept here both as executable documentation of the method and
//! as an independent cross-check of the 2D tensor-product machinery.
//!
//! The 1D "mesh" is a periodic partition of `[0, 1]` into intervals; the dG
//! field stores Legendre modal coefficients per interval; filtering applies
//! `u*(x) = (1/h) ∫ K((y - x)/h) u(y) dy` with exact per-piece Gauss
//! integration (split at both kernel breaks and element boundaries).

use crate::kernel::Kernel1d;
use ustencil_quadrature::gauss::legendre;
use ustencil_quadrature::GaussLegendre;

/// A periodic 1D dG field on `[0, 1]`: `n` uniform intervals, Legendre
/// modal coefficients of degree `p` per interval (orthonormal on the
/// reference interval `[-1, 1]`).
#[derive(Debug, Clone)]
pub struct LineField {
    p: usize,
    n: usize,
    coeffs: Vec<f64>,
}

/// Orthonormal Legendre basis value: `sqrt((2m+1)/2) P_m(r)` on `[-1, 1]`.
#[inline]
fn phi(m: usize, r: f64) -> f64 {
    ((2 * m + 1) as f64 / 2.0).sqrt() * legendre(m, r).0
}

impl LineField {
    /// L2-projects `f` onto the degree-`p` dG space over `n` uniform
    /// intervals.
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn project<F: Fn(f64) -> f64>(n: usize, p: usize, f: F, extra_strength: usize) -> Self {
        assert!(n > 0, "need at least one interval");
        let rule = GaussLegendre::with_strength(2 * p + extra_strength);
        let h = 1.0 / n as f64;
        let mut coeffs = vec![0.0; n * (p + 1)];
        for e in 0..n {
            let x0 = e as f64 * h;
            let c = &mut coeffs[e * (p + 1)..(e + 1) * (p + 1)];
            for (&r, &w) in rule.nodes().iter().zip(rule.weights()) {
                let x = x0 + 0.5 * (r + 1.0) * h;
                let fx = f(x) * w;
                for (m, cm) in c.iter_mut().enumerate() {
                    *cm += fx * phi(m, r);
                }
            }
        }
        Self { p, n, coeffs }
    }

    /// Polynomial degree.
    #[inline]
    pub fn degree(&self) -> usize {
        self.p
    }

    /// Number of intervals.
    #[inline]
    pub fn n_intervals(&self) -> usize {
        self.n
    }

    /// Interval width.
    #[inline]
    pub fn h(&self) -> f64 {
        1.0 / self.n as f64
    }

    /// Evaluates the (discontinuous) field at `x ∈ [0, 1)`; the periodic
    /// extension is used outside.
    pub fn eval(&self, x: f64) -> f64 {
        let xw = x - x.floor();
        let h = self.h();
        let e = ((xw / h) as usize).min(self.n - 1);
        let r = 2.0 * (xw - e as f64 * h) / h - 1.0;
        let c = &self.coeffs[e * (self.p + 1)..(e + 1) * (self.p + 1)];
        c.iter().enumerate().map(|(m, &cm)| cm * phi(m, r)).sum()
    }

    /// L2 error against `f` over `[0, 1]`.
    pub fn l2_error<F: Fn(f64) -> f64>(&self, f: F, extra_strength: usize) -> f64 {
        let rule = GaussLegendre::with_strength(2 * self.p + extra_strength);
        let h = self.h();
        let mut acc = 0.0;
        for e in 0..self.n {
            let x0 = e as f64 * h;
            acc += 0.5
                * h
                * rule.integrate(|r| {
                    let x = x0 + 0.5 * (r + 1.0) * h;
                    let d = self.eval(x) - f(x);
                    d * d
                });
        }
        acc.sqrt()
    }
}

/// Applies the SIAC kernel to a periodic 1D dG field at one point, with
/// exact integration: the convolution integral is split at every kernel
/// break *and* every element boundary, so each Gauss panel sees a single
/// polynomial.
pub fn filter_point(field: &LineField, kernel: &Kernel1d, h: f64, x: f64) -> f64 {
    // u*(x) = ∫ K(s) u(x + h s) ds over the kernel support.
    let (lo, hi) = kernel.support();
    // Breakpoints in s: kernel cell edges and element boundaries mapped to
    // s = (y - x)/h.
    let mut breaks: Vec<f64> = (0..=kernel.n_cells()).map(|c| lo + c as f64).collect();
    let eh = field.h();
    // Element boundaries y = k * eh intersecting [x + h*lo, x + h*hi].
    let y_lo = x + h * lo;
    let y_hi = x + h * hi;
    let k0 = (y_lo / eh).floor() as i64;
    let k1 = (y_hi / eh).ceil() as i64;
    for k in k0..=k1 {
        let s = (k as f64 * eh - x) / h;
        if s > lo && s < hi {
            breaks.push(s);
        }
    }
    breaks.sort_by(f64::total_cmp);
    breaks.dedup_by(|a, b| (*a - *b).abs() < 1e-14);

    // Panel degree: kernel piece (degree k) times field piece (degree p).
    let rule = GaussLegendre::with_strength(kernel.smoothness() + field.degree());
    breaks
        .windows(2)
        .map(|w| rule.integrate_on(w[0], w[1], |s| kernel.eval(s) * field.eval(x + h * s)))
        .sum()
}

/// Filters the field at a uniform lattice of `m` sample points, returning
/// `(x_i, u*(x_i))` pairs.
pub fn filter_uniform(field: &LineField, kernel: &Kernel1d, h: f64, m: usize) -> Vec<(f64, f64)> {
    (0..m)
        .map(|i| {
            let x = (i as f64 + 0.5) / m as f64;
            (x, filter_point(field, kernel, h, x))
        })
        .collect()
}

/// SIAC **derivative recovery**: the derivative of the filtered solution,
/// `(u*)'(x) = -(1/h) ∫ K'(s) u(x + h s) ds` (integration by parts; the
/// kernel vanishes at its support ends). This extracts an accurate
/// derivative from a *discontinuous* dG field, whose raw elementwise
/// derivative is an order less accurate and undefined at interfaces.
pub fn filter_derivative_point(field: &LineField, kernel: &Kernel1d, h: f64, x: f64) -> f64 {
    let (lo, hi) = kernel.support();
    let mut breaks: Vec<f64> = (0..=kernel.n_cells()).map(|c| lo + c as f64).collect();
    let eh = field.h();
    let y_lo = x + h * lo;
    let y_hi = x + h * hi;
    let k0 = (y_lo / eh).floor() as i64;
    let k1 = (y_hi / eh).ceil() as i64;
    for k in k0..=k1 {
        let s = (k as f64 * eh - x) / h;
        if s > lo && s < hi {
            breaks.push(s);
        }
    }
    breaks.sort_by(f64::total_cmp);
    breaks.dedup_by(|a, b| (*a - *b).abs() < 1e-14);

    let rule = GaussLegendre::with_strength(kernel.smoothness() + field.degree());
    let sum: f64 = breaks
        .windows(2)
        .map(|w| rule.integrate_on(w[0], w[1], |s| kernel.eval_deriv(s) * field.eval(x + h * s)))
        .sum();
    -sum / h
}

#[cfg(test)]
mod tests {
    use super::*;

    const TAU: f64 = std::f64::consts::TAU;

    #[test]
    fn projection_reproduces_polynomials() {
        let f = |x: f64| 1.0 - 3.0 * x + x * x;
        let field = LineField::project(7, 2, f, 0);
        for i in 0..50 {
            let x = i as f64 / 50.0;
            assert!((field.eval(x) - f(x)).abs() < 1e-12, "x={x}");
        }
        assert!(field.l2_error(f, 2) < 1e-13);
    }

    #[test]
    fn projection_converges_at_p_plus_one() {
        let f = |x: f64| (TAU * x).sin();
        for p in 1..=2usize {
            let e1 = LineField::project(8, p, f, 6).l2_error(f, 6);
            let e2 = LineField::project(16, p, f, 6).l2_error(f, 6);
            let rate = (e1 / e2).log2();
            assert!(rate > p as f64 + 0.7, "p={p} rate {rate}");
        }
    }

    #[test]
    fn filtering_is_exact_on_global_polynomials() {
        // Projection of a degree-<=p polynomial is the polynomial itself;
        // the kernel reproduces up to degree 2p; so filtering is exact at
        // interior points.
        for p in 1..=3usize {
            let f = move |x: f64| match p {
                1 => 0.5 + x,
                2 => 0.5 + x - 0.3 * x * x,
                _ => 0.5 + x - 0.3 * x * x + 0.1 * x * x * x,
            };
            let field = LineField::project(20, p, f, 0);
            let kernel = Kernel1d::symmetric(p);
            let h = field.h();
            // Stay far enough from 0/1 that the stencil doesn't wrap (the
            // field is globally polynomial, not periodic).
            let half_support = (3 * p + 1) as f64 / 2.0 * h;
            for &x in &[0.4, 0.5, 0.55] {
                assert!(half_support < 0.35);
                let got = filter_point(&field, &kernel, h, x);
                assert!((got - f(x)).abs() < 1e-10, "p={p} x={x}: {got} vs {}", f(x));
            }
        }
    }

    #[test]
    fn siac_superconvergence_in_1d() {
        // The classic result: dG projection error is O(h^{p+1}) but the
        // filtered error at points is O(h^{2p+1}) on uniform periodic
        // meshes.
        let f = |x: f64| (TAU * x).sin();
        let p = 1;
        let kernel = Kernel1d::symmetric(p);
        let mut filtered = Vec::new();
        let mut raw = Vec::new();
        for n in [16usize, 32] {
            let field = LineField::project(n, p, f, 6);
            raw.push(field.l2_error(f, 6));
            let samples = filter_uniform(&field, &kernel, field.h(), 4 * n);
            let rms = (samples
                .iter()
                .map(|&(x, v)| (v - f(x)).powi(2))
                .sum::<f64>()
                / samples.len() as f64)
                .sqrt();
            filtered.push(rms);
        }
        let raw_rate = (raw[0] / raw[1]).log2();
        let fil_rate = (filtered[0] / filtered[1]).log2();
        assert!(raw_rate > 1.6 && raw_rate < 2.4, "raw rate {raw_rate}");
        assert!(
            fil_rate > 2.6,
            "superconvergence: expected ~{} got {fil_rate}",
            2 * p + 1
        );
        assert!(filtered[1] < raw[1], "filtering must reduce error");
    }

    #[test]
    fn derivative_recovery_is_exact_on_polynomials() {
        // (u*)' of a projected polynomial of degree <= 2k equals u' exactly
        // at interior points: differentiate the reproduction identity.
        let p = 2;
        let f = |x: f64| 0.5 + x - 0.3 * x * x;
        let df = |x: f64| 1.0 - 0.6 * x;
        let field = LineField::project(20, p, f, 0);
        let kernel = Kernel1d::symmetric(p);
        let h = field.h();
        for &x in &[0.4, 0.5, 0.6] {
            let got = filter_derivative_point(&field, &kernel, h, x);
            assert!((got - df(x)).abs() < 1e-9, "x={x}: {got} vs {}", df(x));
        }
    }

    #[test]
    fn derivative_recovery_beats_raw_derivative_on_sine() {
        // The raw dG derivative of a P1 field is piecewise constant (first
        // order); the recovered derivative converges much faster.
        let f = |x: f64| (TAU * x).sin();
        let df = |x: f64| TAU * (TAU * x).cos();
        let p = 1;
        let kernel = Kernel1d::symmetric(p);
        let mut errs = Vec::new();
        for n in [16usize, 32] {
            let field = LineField::project(n, p, f, 6);
            let h = field.h();
            let m = 4 * n;
            let rms = ((0..m)
                .map(|i| {
                    let x = (i as f64 + 0.5) / m as f64;
                    (filter_derivative_point(&field, &kernel, h, x) - df(x)).powi(2)
                })
                .sum::<f64>()
                / m as f64)
                .sqrt();
            errs.push(rms);
        }
        let rate = (errs[0] / errs[1]).log2();
        assert!(
            rate > 1.8,
            "recovered-derivative rate {rate} (errs {errs:?})"
        );
        // Raw P1 derivative error is O(h) and roughly TAU^2*h in magnitude;
        // the recovered one must be far below it on the finer mesh.
        let raw_scale = TAU * TAU / 32.0;
        assert!(
            errs[1] < raw_scale / 5.0,
            "recovered {} should beat raw-derivative scale {}",
            errs[1],
            raw_scale
        );
    }

    #[test]
    fn filtered_constant_is_constant() {
        let field = LineField::project(9, 1, |_| 4.0, 0);
        let kernel = Kernel1d::symmetric(1);
        for &x in &[0.0, 0.13, 0.5, 0.99] {
            let got = filter_point(&field, &kernel, field.h(), x);
            assert!((got - 4.0).abs() < 1e-11, "x={x}: {got}");
        }
    }

    #[test]
    fn periodic_wrap_in_1d() {
        // A periodic sine filtered right at the boundary uses the wrap; the
        // result should be as accurate as in the middle.
        let f = |x: f64| (TAU * x).sin() + 1.0;
        let field = LineField::project(32, 2, f, 6);
        let kernel = Kernel1d::symmetric(2);
        let h = field.h();
        let err_boundary = (filter_point(&field, &kernel, h, 0.01) - f(0.01)).abs();
        let err_middle = (filter_point(&field, &kernel, h, 0.51) - f(0.51)).abs();
        assert!(
            err_boundary < 100.0 * err_middle + 1e-12,
            "boundary {err_boundary:e} vs middle {err_middle:e}"
        );
    }
}
