//! The 2D tensor-product stencil geometry.
//!
//! In two dimensions the convolution kernel is the tensor product of 1D
//! kernels (Eq. 1), and its support is the `(3k+1) x (3k+1)` "array of
//! squares" of Figure 5, scaled by the characteristic length `h` and centered
//! on the evaluation point. Each lattice square carries a bi-degree-`k`
//! polynomial restriction of the kernel, so integrating over sub-regions of a
//! single square is exact with modest quadrature strength.

use crate::kernel::Kernel1d;
use std::sync::Arc;
use ustencil_geometry::{Point2, Rect};

/// A scaled, tensor-product SIAC stencil.
#[derive(Debug, Clone)]
pub struct Stencil2d {
    kernel: Arc<Kernel1d>,
    h: f64,
}

impl Stencil2d {
    /// Builds the symmetric stencil for smoothness `k` at mesh scale `h`
    /// (`h` is the longest mesh edge `s` in the paper's setup, so the
    /// stencil width is `w = (3k+1) s`).
    ///
    /// # Panics
    /// Panics for non-positive `h`.
    pub fn symmetric(k: usize, h: f64) -> Self {
        assert!(h > 0.0, "stencil scale must be positive");
        Self {
            kernel: Arc::new(Kernel1d::symmetric(k)),
            h,
        }
    }

    /// Builds a stencil from an explicit 1D kernel (e.g. one-sided).
    pub fn from_kernel(kernel: Arc<Kernel1d>, h: f64) -> Self {
        assert!(h > 0.0, "stencil scale must be positive");
        Self { kernel, h }
    }

    /// The underlying 1D kernel.
    #[inline]
    pub fn kernel(&self) -> &Arc<Kernel1d> {
        &self.kernel
    }

    /// The scale `h`.
    #[inline]
    pub fn h(&self) -> f64 {
        self.h
    }

    /// Lattice cells per side, `3k + 1`.
    #[inline]
    pub fn cells_per_side(&self) -> usize {
        self.kernel.n_cells()
    }

    /// Total stencil width `(3k + 1) h`.
    #[inline]
    pub fn width(&self) -> f64 {
        self.cells_per_side() as f64 * self.h
    }

    /// The full support rectangle for a stencil centered at `center`.
    pub fn support_rect(&self, center: Point2) -> Rect {
        let (lo, hi) = self.kernel.support();
        Rect::new(
            center.x + lo * self.h,
            center.y + lo * self.h,
            center.x + hi * self.h,
            center.y + hi * self.h,
        )
    }

    /// The lattice square at cell index `(i, j)` for a stencil centered at
    /// `center`; indices run over `0..cells_per_side()`.
    #[inline]
    pub fn cell_rect(&self, center: Point2, i: usize, j: usize) -> Rect {
        let (lo, _) = self.kernel.support();
        let x0 = center.x + (lo + i as f64) * self.h;
        let y0 = center.y + (lo + j as f64) * self.h;
        Rect::new(x0, y0, x0 + self.h, y0 + self.h)
    }

    /// Iterator over all lattice squares of the stencil at `center`.
    pub fn cells(&self, center: Point2) -> impl Iterator<Item = Rect> + '_ {
        let n = self.cells_per_side();
        (0..n).flat_map(move |j| (0..n).map(move |i| self.cell_rect(center, i, j)))
    }

    /// The scaled 2D kernel value `K((p - center)/h) / h^2` at point `p`.
    #[inline]
    pub fn eval(&self, center: Point2, p: Point2) -> f64 {
        let inv_h = 1.0 / self.h;
        self.kernel.eval((p.x - center.x) * inv_h)
            * self.kernel.eval((p.y - center.y) * inv_h)
            * inv_h
            * inv_h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_matches_paper_formula() {
        for k in 0..=3usize {
            let st = Stencil2d::symmetric(k, 0.1);
            assert!((st.width() - (3 * k + 1) as f64 * 0.1).abs() < 1e-15);
            assert_eq!(st.cells_per_side(), 3 * k + 1);
        }
    }

    #[test]
    fn cells_tile_the_support() {
        let st = Stencil2d::symmetric(2, 0.25);
        let center = Point2::new(0.4, 0.6);
        let sup = st.support_rect(center);
        let total: f64 = st.cells(center).map(|r| r.area()).sum();
        assert!((total - sup.area()).abs() < 1e-12);
        let n = st.cells_per_side();
        assert_eq!(st.cells(center).count(), n * n);
        // First and last cell corners hit the support corners.
        let first = st.cell_rect(center, 0, 0);
        let last = st.cell_rect(center, n - 1, n - 1);
        assert!((first.x0 - sup.x0).abs() < 1e-12);
        assert!((last.x1 - sup.x1).abs() < 1e-9);
    }

    #[test]
    fn eval_is_separable_product() {
        let st = Stencil2d::symmetric(1, 0.5);
        let c = Point2::new(0.0, 0.0);
        let k = st.kernel();
        let p = Point2::new(0.3, -0.2);
        let want = k.eval(0.6) * k.eval(-0.4) / 0.25;
        assert!((st.eval(c, p) - want).abs() < 1e-12);
    }

    #[test]
    fn eval_vanishes_outside_support() {
        let st = Stencil2d::symmetric(1, 0.1);
        let c = Point2::new(0.5, 0.5);
        assert_eq!(st.eval(c, Point2::new(0.5 + 0.21, 0.5)), 0.0);
        assert_eq!(st.eval(c, Point2::new(0.5, 0.5 - 0.21)), 0.0);
    }

    #[test]
    fn unit_mass_in_2d() {
        // Riemann-sum check that ∫∫ K_h dx dy = 1.
        let st = Stencil2d::symmetric(1, 0.2);
        let c = Point2::new(0.0, 0.0);
        let n = 400;
        let (lo, hi) = st.kernel().support();
        let a = lo * st.h();
        let w = (hi - lo) * st.h();
        let dx = w / n as f64;
        let mut acc = 0.0;
        for i in 0..n {
            for j in 0..n {
                let p = Point2::new(a + (i as f64 + 0.5) * dx, a + (j as f64 + 0.5) * dx);
                acc += st.eval(c, p) * dx * dx;
            }
        }
        assert!((acc - 1.0).abs() < 1e-3, "mass {acc}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_panics() {
        let _ = Stencil2d::symmetric(1, 0.0);
    }
}
