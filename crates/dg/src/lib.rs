//! Modal discontinuous Galerkin (dG) fields over unstructured triangular
//! meshes.
//!
//! The SIAC post-processor consumes "an array of the polynomial modes used in
//! the discontinuous Galerkin method" (Section 2.2). This crate provides the
//! dG substrate that produces and evaluates those modes:
//!
//! * [`DubinerBasis`] — the orthonormal Dubiner (collapsed-coordinate Jacobi)
//!   modal basis on the reference triangle; 3 / 6 / 10 modes for linear /
//!   quadratic / cubic elements, exactly the coefficient counts the paper
//!   reports,
//! * [`DgField`] — per-element modal coefficient storage with point
//!   evaluation,
//! * [`project`] — elementwise L2 projection of analytic functions,
//! * [`error`] — quadrature-based L2 / L∞ error norms,
//! * [`solver`] — a linear advection dG solver (upwind flux, SSP-RK3 time
//!   stepping) for producing genuine simulation fields to post-process.

#![deny(missing_docs)]

pub mod basis;
pub mod error;
pub mod field;
pub mod project;
pub mod solver;

pub use basis::DubinerBasis;
pub use error::{l2_error, l2_norm, linf_error};
pub use field::DgField;
pub use project::project_l2;
pub use solver::{AdvectionConfig, AdvectionSolver};

/// Number of modes of a total-degree-`p` modal basis on a triangle:
/// `(p + 1)(p + 2) / 2`.
#[inline]
pub const fn n_modes(p: usize) -> usize {
    (p + 1) * (p + 2) / 2
}
