//! A linear-advection discontinuous Galerkin solver.
//!
//! Solves `u_t + c . grad(u) = 0` on the periodic unit square with upwind
//! numerical flux and SSP-RK3 time stepping. Its purpose in this library is
//! to manufacture *genuine* dG simulation fields — discontinuous across
//! element interfaces — for the SIAC post-processor to filter, as in the
//! paper's motivating application.
//!
//! Periodic coupling requires the mesh boundary traces on opposite sides of
//! the square to match (the structured-pattern generator guarantees this);
//! construction fails with a descriptive panic otherwise.

use crate::basis::DubinerBasis;
use crate::field::DgField;
use std::sync::Arc;
use ustencil_geometry::{Point2, Vec2};
use ustencil_mesh::TriMesh;
use ustencil_quadrature::GaussLegendre;

/// Configuration of the advection solve.
#[derive(Debug, Clone, Copy)]
pub struct AdvectionConfig {
    /// Constant advection velocity.
    pub velocity: (f64, f64),
    /// CFL number scaling the stable time step (0.1–0.3 is robust for RK3).
    pub cfl: f64,
}

impl Default for AdvectionConfig {
    fn default() -> Self {
        Self {
            velocity: (1.0, 0.5),
            cfl: 0.15,
        }
    }
}

/// Neighbor across one element edge.
#[derive(Debug, Clone, Copy)]
struct FaceNeighbor {
    /// Neighboring element.
    elem: u32,
    /// Periodic shift that maps our coordinates into the neighbor's frame.
    shift: Vec2,
}

/// Per-element constants reused every right-hand-side evaluation.
#[derive(Debug, Clone, Copy)]
struct ElemGeom {
    /// |det J|.
    jac: f64,
    /// `J^{-1} c` — the advection velocity pulled back to reference
    /// coordinates.
    cref: (f64, f64),
}

/// The assembled solver.
pub struct AdvectionSolver {
    mesh: TriMesh,
    basis: Arc<DubinerBasis>,
    config: AdvectionConfig,
    neighbors: Vec<[FaceNeighbor; 3]>,
    geom: Vec<ElemGeom>,
    /// Volume quadrature weights, with basis values and reference gradients
    /// tabulated at the matching points.
    vol_wts: Vec<f64>,
    vol_phi: Vec<f64>,
    vol_dphi: Vec<(f64, f64)>,
    /// Edge quadrature on [0, 1].
    edge_nodes: Vec<f64>,
    edge_wts: Vec<f64>,
    /// Basis values at each (edge, edge-node) reference location.
    edge_phi: Vec<f64>,
}

/// Reference coordinates of parameter `t` along local edge `k`
/// (counter-clockwise; edge 0 joins vertices 0-1, etc.).
#[inline]
fn edge_ref_coords(k: usize, t: f64) -> (f64, f64) {
    match k {
        0 => (t, 0.0),
        1 => (1.0 - t, t),
        _ => (0.0, 1.0 - t),
    }
}

impl AdvectionSolver {
    /// Assembles a solver of degree `p` over `mesh`.
    ///
    /// # Panics
    /// Panics when the mesh boundary cannot be matched periodically.
    pub fn new(mesh: TriMesh, p: usize, config: AdvectionConfig) -> Self {
        let basis = Arc::new(DubinerBasis::new(p));
        let n_modes = basis.n_modes();

        let neighbors = build_periodic_adjacency(&mesh);

        let c = Vec2::new(config.velocity.0, config.velocity.1);
        let geom: Vec<ElemGeom> = mesh
            .triangles()
            .map(|t| {
                let e1 = t.b - t.a;
                let e2 = t.c - t.a;
                let det = e1.cross(e2);
                // J^{-1} = 1/det [[e2y, -e2x], [-e1y, e1x]].
                let cref = (
                    (e2.y * c.x - e2.x * c.y) / det,
                    (-e1.y * c.x + e1.x * c.y) / det,
                );
                ElemGeom {
                    jac: det.abs(),
                    cref,
                }
            })
            .collect();

        // Volume quadrature of strength 2p (u is degree p, grad(phi) degree
        // p-1, but keep a margin of one).
        let rule = ustencil_quadrature::TriangleRule::with_strength(2 * p + 1);
        let vol_pts: &[(f64, f64)] = rule.points();
        let vol_wts = rule.weights().to_vec();
        let mut vol_phi = vec![0.0; vol_pts.len() * n_modes];
        let mut vol_dphi = vec![(0.0, 0.0); vol_pts.len() * n_modes];
        for (q, &(u, v)) in vol_pts.iter().enumerate() {
            basis.eval_all(u, v, &mut vol_phi[q * n_modes..(q + 1) * n_modes]);
            for m in 0..n_modes {
                vol_dphi[q * n_modes + m] = basis.grad_mode(m, u, v);
            }
        }

        // Edge quadrature of strength 2p + 1 on [0, 1].
        let gl = GaussLegendre::with_strength(2 * p + 1);
        let edge_nodes: Vec<f64> = gl.nodes().iter().map(|&x| 0.5 * (1.0 + x)).collect();
        let edge_wts: Vec<f64> = gl.weights().iter().map(|&w| 0.5 * w).collect();
        let mut edge_phi = vec![0.0; 3 * edge_nodes.len() * n_modes];
        for k in 0..3 {
            for (q, &t) in edge_nodes.iter().enumerate() {
                let (u, v) = edge_ref_coords(k, t);
                let off = (k * edge_nodes.len() + q) * n_modes;
                basis.eval_all(u, v, &mut edge_phi[off..off + n_modes]);
            }
        }

        Self {
            mesh,
            basis,
            config,
            neighbors,
            geom,
            vol_wts,
            vol_phi,
            vol_dphi,
            edge_nodes,
            edge_wts,
            edge_phi,
        }
    }

    /// The mesh the solver was assembled on.
    pub fn mesh(&self) -> &TriMesh {
        &self.mesh
    }

    /// Stable time step from the CFL condition (inradius-based element
    /// scale).
    pub fn stable_dt(&self) -> f64 {
        let c = Vec2::new(self.config.velocity.0, self.config.velocity.1);
        let speed = c.norm().max(1e-12);
        let p = self.basis.degree() as f64;
        let h_min = self
            .mesh
            .triangles()
            .map(|t| 2.0 * t.area() / t.longest_edge())
            .fold(f64::INFINITY, f64::min);
        self.config.cfl * h_min / (speed * (2.0 * p + 1.0))
    }

    /// Evaluates the semi-discrete right-hand side `du/dt` for the current
    /// coefficients into `out`.
    fn rhs(&self, field: &DgField, out: &mut [f64]) {
        let n_modes = self.basis.n_modes();
        let nq_edge = self.edge_nodes.len();
        out.fill(0.0);

        for e in 0..self.mesh.n_triangles() {
            let geom = self.geom[e];
            let coeffs = field.element_coeffs(e);
            let out_e = &mut out[e * n_modes..(e + 1) * n_modes];

            // Volume term: |J| * sum_q w_q u(q) (c_ref . grad_ref phi_m).
            for (q, &w) in self.vol_wts.iter().enumerate() {
                let row = &self.vol_phi[q * n_modes..(q + 1) * n_modes];
                let u_val: f64 = coeffs.iter().zip(row).map(|(c, p)| c * p).sum();
                let scale = w * u_val;
                for (m, o) in out_e.iter_mut().enumerate() {
                    let (du, dv) = self.vol_dphi[q * n_modes + m];
                    *o += scale * (geom.cref.0 * du + geom.cref.1 * dv);
                }
            }
            // The |J| of the volume integral cancels against the inverse
            // mass matrix M^{-1} = I / |J|, so the volume contribution above
            // is already in du/dt form. Face terms carry physical measure
            // and need the explicit division; accumulate them separately.
            let mut face_acc = [0.0f64; 16];
            debug_assert!(n_modes <= face_acc.len());

            let tri = self.mesh.triangle(e);
            let verts = tri.vertices();
            let c = Vec2::new(self.config.velocity.0, self.config.velocity.1);
            for k in 0..3 {
                let a = verts[k];
                let b = verts[(k + 1) % 3];
                let edge = b - a;
                let len = edge.norm();
                // Outward normal of a CCW triangle.
                let n = Vec2::new(edge.y, -edge.x) / len;
                let cn = c.dot(n);
                let nb = self.neighbors[e][k];
                let nb_coeffs = field.element_coeffs(nb.elem as usize);
                let nb_tri = self.mesh.triangle(nb.elem as usize);
                for (q, (&t, &w)) in self.edge_nodes.iter().zip(&self.edge_wts).enumerate() {
                    let x = a.lerp(b, t);
                    // Interior trace.
                    let row = &self.edge_phi
                        [(k * nq_edge + q) * n_modes..(k * nq_edge + q + 1) * n_modes];
                    let u_minus: f64 = coeffs.iter().zip(row).map(|(c, p)| c * p).sum();
                    let flux = if cn >= 0.0 {
                        cn * u_minus
                    } else {
                        // Exterior trace through the periodic shift.
                        let xn = x + nb.shift;
                        let (un, vn) = nb_tri
                            .map_to_unit(xn)
                            .expect("neighbor element is non-degenerate");
                        let u_plus = self.basis.eval_expansion(nb_coeffs, un, vn);
                        cn * u_plus
                    };
                    let scale = w * len * flux;
                    for m in 0..n_modes {
                        face_acc[m] += scale * row[m];
                    }
                }
            }

            let inv_jac = 1.0 / geom.jac;
            for (o, f) in out_e.iter_mut().zip(&face_acc) {
                *o -= f * inv_jac;
            }
        }
    }

    /// Advances `field` by one SSP-RK3 step of size `dt`.
    pub fn step(&self, field: &mut DgField, dt: f64) {
        let n = field.coefficients().len();
        let mut k1 = vec![0.0; n];
        let mut tmp = field.clone();

        // Stage 1.
        self.rhs(field, &mut k1);
        for (t, (u, r)) in tmp
            .coefficients_mut()
            .iter_mut()
            .zip(field.coefficients().iter().zip(&k1))
        {
            *t = u + dt * r;
        }
        // Stage 2.
        let mut k2 = vec![0.0; n];
        self.rhs(&tmp, &mut k2);
        for (t, (u, (r1, r2))) in tmp
            .coefficients_mut()
            .iter_mut()
            .zip(field.coefficients().iter().zip(k1.iter().zip(&k2)))
        {
            *t = 0.75 * u + 0.25 * (u + dt * r1 + dt * r2);
        }
        // Stage 3.
        let mut k3 = vec![0.0; n];
        self.rhs(&tmp, &mut k3);
        let two_thirds = 2.0 / 3.0;
        for (u, (t, r3)) in field
            .coefficients_mut()
            .iter_mut()
            .zip(tmp.coefficients().iter().zip(&k3))
        {
            *u = *u / 3.0 + two_thirds * (t + dt * r3);
        }
    }

    /// Advances `field` to time `t_end` (taking uniform stable steps) and
    /// returns the number of steps taken.
    pub fn advance(&self, field: &mut DgField, t_end: f64) -> usize {
        assert!(t_end >= 0.0);
        let dt0 = self.stable_dt();
        let n_steps = (t_end / dt0).ceil().max(1.0) as usize;
        let dt = t_end / n_steps as f64;
        for _ in 0..n_steps {
            self.step(field, dt);
        }
        n_steps
    }

    /// Mesh-wide integral of the field (the conserved quantity of periodic
    /// advection).
    pub fn total_mass(&self, field: &DgField) -> f64 {
        // Integral over an element = |J| * c_0 * \int_ref phi_0 =
        // |J| c_0 * (1/2) * sqrt(2).
        let phi0_int = 0.5 * 2f64.sqrt();
        (0..self.mesh.n_triangles())
            .map(|e| self.geom[e].jac * field.element_coeffs(e)[0] * phi0_int)
            .sum()
    }
}

/// Builds per-element, per-edge adjacency with periodic wrapping over the
/// unit square.
fn build_periodic_adjacency(mesh: &TriMesh) -> Vec<[FaceNeighbor; 3]> {
    use std::collections::HashMap;

    let quantize =
        |p: Point2| -> (i64, i64) { ((p.x * 1e9).round() as i64, (p.y * 1e9).round() as i64) };

    // Midpoint -> (element, local edge). Interior edges appear twice.
    let mut edge_map: HashMap<(i64, i64), Vec<(u32, u8)>> = HashMap::new();
    for (e, tri) in mesh.triangles().enumerate() {
        let verts = tri.vertices();
        for k in 0..3 {
            let mid = verts[k].lerp(verts[(k + 1) % 3], 0.5);
            edge_map
                .entry(quantize(mid))
                .or_default()
                .push((e as u32, k as u8));
        }
    }

    let dummy = FaceNeighbor {
        elem: u32::MAX,
        shift: Vec2::ZERO,
    };
    let mut neighbors = vec![[dummy; 3]; mesh.n_triangles()];

    for (e, tri) in mesh.triangles().enumerate() {
        let verts = tri.vertices();
        for k in 0..3 {
            let mid = verts[k].lerp(verts[(k + 1) % 3], 0.5);
            let entry = &edge_map[&quantize(mid)];
            if let Some(&(ne, _nk)) = entry.iter().find(|&&(ne, _)| ne != e as u32) {
                neighbors[e][k] = FaceNeighbor {
                    elem: ne,
                    shift: Vec2::ZERO,
                };
                continue;
            }
            // Boundary edge: search the periodic images.
            let mut found = false;
            for shift in [
                Vec2::new(1.0, 0.0),
                Vec2::new(-1.0, 0.0),
                Vec2::new(0.0, 1.0),
                Vec2::new(0.0, -1.0),
            ] {
                let img = quantize(mid + shift);
                if let Some(list) = edge_map.get(&img) {
                    if let Some(&(ne, _)) = list.first() {
                        neighbors[e][k] = FaceNeighbor { elem: ne, shift };
                        found = true;
                        break;
                    }
                }
            }
            assert!(
                found,
                "boundary edge of element {e} (midpoint {mid:?}) has no periodic partner; \
                 periodic advection requires matching boundary traces \
                 (use MeshClass::StructuredPattern)"
            );
        }
    }
    neighbors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::l2_error;
    use crate::project::project_l2;
    use ustencil_mesh::{generate_mesh, MeshClass};

    const TAU: f64 = std::f64::consts::TAU;

    #[test]
    fn constant_field_is_steady() {
        let mesh = generate_mesh(MeshClass::StructuredPattern, 2 * 8 * 8, 0);
        let solver = AdvectionSolver::new(mesh.clone(), 1, AdvectionConfig::default());
        let mut field = project_l2(&mesh, 1, |_, _| 3.0, 0);
        let before = field.coefficients().to_vec();
        solver.advance(&mut field, 0.05);
        for (a, b) in before.iter().zip(field.coefficients()) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }

    #[test]
    fn mass_is_conserved() {
        let mesh = generate_mesh(MeshClass::StructuredPattern, 2 * 8 * 8, 0);
        let solver = AdvectionSolver::new(mesh.clone(), 2, AdvectionConfig::default());
        let mut field = project_l2(&mesh, 2, |x, y| (TAU * x).sin() * (TAU * y).cos() + 0.5, 4);
        let m0 = solver.total_mass(&field);
        solver.advance(&mut field, 0.1);
        let m1 = solver.total_mass(&field);
        assert!((m0 - m1).abs() < 1e-10, "mass drifted {m0} -> {m1}");
    }

    #[test]
    fn advected_sine_matches_translated_exact_solution() {
        let mesh = generate_mesh(MeshClass::StructuredPattern, 2 * 12 * 12, 0);
        let cfg = AdvectionConfig {
            velocity: (1.0, 0.0),
            cfl: 0.15,
        };
        let solver = AdvectionSolver::new(mesh.clone(), 2, cfg);
        let f0 = |x: f64, y: f64| (TAU * x).sin() * (TAU * y).cos();
        let mut field = project_l2(&mesh, 2, f0, 4);
        let t = 0.25;
        solver.advance(&mut field, t);
        let exact = move |x: f64, y: f64| f0(x - t, y);
        let err = l2_error(&mesh, &field, exact, 4);
        assert!(err < 5e-3, "L2 error after advection: {err}");
    }

    #[test]
    fn error_decreases_under_refinement() {
        let cfg = AdvectionConfig {
            velocity: (1.0, 0.5),
            cfl: 0.15,
        };
        let f0 = |x: f64, y: f64| (TAU * x).sin() * (TAU * y).sin();
        let t = 0.1;
        let exact = move |x: f64, y: f64| f0(x - t, y - 0.5 * t);
        let mut errs = Vec::new();
        for n in [6usize, 12] {
            let mesh = generate_mesh(MeshClass::StructuredPattern, 2 * n * n, 0);
            let solver = AdvectionSolver::new(mesh.clone(), 1, cfg);
            let mut field = project_l2(&mesh, 1, f0, 4);
            solver.advance(&mut field, t);
            errs.push(l2_error(&mesh, &field, exact, 4));
        }
        assert!(errs[1] < errs[0] / 2.5, "no convergence: {:?}", errs);
    }

    #[test]
    #[should_panic(expected = "periodic partner")]
    fn unmatched_boundary_panics() {
        // Low-variance meshes have unmatched boundary traces.
        let mesh = generate_mesh(MeshClass::LowVariance, 100, 3);
        let _ = AdvectionSolver::new(mesh, 1, AdvectionConfig::default());
    }
}
