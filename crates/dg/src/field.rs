//! Per-element modal coefficient storage.

use crate::basis::DubinerBasis;
use std::sync::Arc;
use ustencil_geometry::Point2;
use ustencil_mesh::TriMesh;

/// A discontinuous Galerkin field: one modal coefficient vector per element.
///
/// The coefficient layout is flat (`element * n_modes + mode`), matching the
/// "array of polynomial modes" the paper's post-processor consumes. The basis
/// is shared behind an [`Arc`] so fields are cheap to clone and to send
/// across worker threads.
#[derive(Debug, Clone)]
pub struct DgField {
    basis: Arc<DubinerBasis>,
    n_elements: usize,
    coeffs: Vec<f64>,
}

impl DgField {
    /// A zero field with `n_elements` elements of degree `p`.
    pub fn zeros(p: usize, n_elements: usize) -> Self {
        let basis = Arc::new(DubinerBasis::new(p));
        let n = basis.n_modes() * n_elements;
        Self {
            basis,
            n_elements,
            coeffs: vec![0.0; n],
        }
    }

    /// A field wrapping existing coefficients.
    ///
    /// # Panics
    /// Panics when `coeffs.len()` is not `n_elements * n_modes(p)`.
    pub fn from_coefficients(p: usize, n_elements: usize, coeffs: Vec<f64>) -> Self {
        let basis = Arc::new(DubinerBasis::new(p));
        assert_eq!(
            coeffs.len(),
            basis.n_modes() * n_elements,
            "coefficient buffer size mismatch"
        );
        Self {
            basis,
            n_elements,
            coeffs,
        }
    }

    /// Polynomial degree of the field.
    #[inline]
    pub fn degree(&self) -> usize {
        self.basis.degree()
    }

    /// Modes per element.
    #[inline]
    pub fn n_modes(&self) -> usize {
        self.basis.n_modes()
    }

    /// Number of elements.
    #[inline]
    pub fn n_elements(&self) -> usize {
        self.n_elements
    }

    /// The shared basis.
    #[inline]
    pub fn basis(&self) -> &Arc<DubinerBasis> {
        &self.basis
    }

    /// Modal coefficients of one element.
    #[inline]
    pub fn element_coeffs(&self, e: usize) -> &[f64] {
        let n = self.n_modes();
        &self.coeffs[e * n..(e + 1) * n]
    }

    /// Mutable modal coefficients of one element.
    #[inline]
    pub fn element_coeffs_mut(&mut self, e: usize) -> &mut [f64] {
        let n = self.n_modes();
        &mut self.coeffs[e * n..(e + 1) * n]
    }

    /// The whole flat coefficient buffer.
    #[inline]
    pub fn coefficients(&self) -> &[f64] {
        &self.coeffs
    }

    /// Mutable flat coefficient buffer.
    #[inline]
    pub fn coefficients_mut(&mut self) -> &mut [f64] {
        &mut self.coeffs
    }

    /// A field with element coefficient blocks renumbered by `new_to_old`
    /// (element `i` of the result holds the coefficients of element
    /// `new_to_old[i]` of `self`), matching a mesh renumbered by
    /// `TriMesh::reordered_elements` with the same permutation. The basis
    /// `Arc` is shared.
    ///
    /// # Panics
    /// Panics when `new_to_old` is not `n_elements` long or indexes out of
    /// bounds.
    pub fn reordered_elements(&self, new_to_old: &[u32]) -> DgField {
        assert_eq!(
            new_to_old.len(),
            self.n_elements,
            "permutation length must match element count"
        );
        let nm = self.n_modes();
        let mut coeffs = Vec::with_capacity(self.coeffs.len());
        for &old in new_to_old {
            coeffs.extend_from_slice(self.element_coeffs(old as usize));
        }
        Self {
            basis: Arc::clone(&self.basis),
            n_elements: self.n_elements,
            coeffs: {
                debug_assert_eq!(coeffs.len(), self.n_elements * nm);
                coeffs
            },
        }
    }

    /// Evaluates the field at reference coordinates `(u, v)` of element `e`.
    #[inline]
    pub fn eval_ref(&self, e: usize, u: f64, v: f64) -> f64 {
        self.basis.eval_expansion(self.element_coeffs(e), u, v)
    }

    /// Evaluates the field at a physical point known to lie in element `e`
    /// of `mesh`. Points outside the element are extrapolated (the element
    /// polynomial is global).
    pub fn eval_physical(&self, mesh: &TriMesh, e: usize, p: Point2) -> Option<f64> {
        let tri = mesh.triangle(e);
        let (u, v) = tri.map_to_unit(p)?;
        Some(self.eval_ref(e, u, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ustencil_geometry::Point2;

    #[test]
    fn zero_field_evaluates_to_zero() {
        let f = DgField::zeros(2, 5);
        assert_eq!(f.n_elements(), 5);
        assert_eq!(f.n_modes(), 6);
        assert_eq!(f.eval_ref(3, 0.25, 0.25), 0.0);
    }

    #[test]
    fn constant_field_round_trip() {
        // Setting only mode 0 yields a constant field with value
        // c0 * sqrt(2).
        let mut f = DgField::zeros(1, 2);
        f.element_coeffs_mut(1)[0] = 3.0;
        let got = f.eval_ref(1, 0.2, 0.6);
        assert!((got - 3.0 * 2f64.sqrt()).abs() < 1e-13);
        assert_eq!(f.eval_ref(0, 0.2, 0.6), 0.0);
    }

    #[test]
    fn physical_evaluation_uses_reference_map() {
        let mesh = TriMesh::from_raw(
            vec![
                Point2::new(0.0, 0.0),
                Point2::new(2.0, 0.0),
                Point2::new(0.0, 2.0),
            ],
            vec![[0, 1, 2]],
        );
        let mut f = DgField::zeros(0, 1);
        f.element_coeffs_mut(0)[0] = 1.0;
        let v = f.eval_physical(&mesh, 0, Point2::new(0.5, 0.5)).unwrap();
        assert!((v - 2f64.sqrt()).abs() < 1e-13);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn wrong_buffer_size_panics() {
        let _ = DgField::from_coefficients(1, 2, vec![0.0; 5]);
    }
}
