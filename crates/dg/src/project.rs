//! Elementwise L2 projection of analytic functions onto the dG space.

use crate::field::DgField;
use ustencil_mesh::TriMesh;
use ustencil_quadrature::TriangleRule;

/// Projects `f(x, y)` onto the degree-`p` dG space over `mesh` by exact
/// elementwise L2 projection.
///
/// Because the modal basis is orthonormal on the reference element and the
/// element maps are affine, each coefficient is a single quadrature sum:
/// `c_m = ∫_ref f(F(u, v)) φ_m(u, v) du dv` — no mass-matrix solve needed.
///
/// `extra_strength` adds quadrature strength beyond the `2p` needed for
/// polynomial `f`; smooth non-polynomial inputs (sines) are projected with
/// a few extra orders so the projection error is dominated by the dG space,
/// not the quadrature.
pub fn project_l2<F: Fn(f64, f64) -> f64>(
    mesh: &TriMesh,
    p: usize,
    f: F,
    extra_strength: usize,
) -> DgField {
    let mut field = DgField::zeros(p, mesh.n_triangles());
    let basis = field.basis().clone();
    let rule = TriangleRule::with_strength(2 * p + extra_strength);
    let n_modes = basis.n_modes();

    // Precompute basis values at the quadrature points once.
    let mut phi = vec![0.0; rule.len() * n_modes];
    for (q, &(u, v)) in rule.points().iter().enumerate() {
        basis.eval_all(u, v, &mut phi[q * n_modes..(q + 1) * n_modes]);
    }

    for e in 0..mesh.n_triangles() {
        let tri = mesh.triangle(e);
        let coeffs = field.element_coeffs_mut(e);
        for (q, (&(u, v), &w)) in rule.points().iter().zip(rule.weights()).enumerate() {
            let pt = tri.map_from_unit(u, v);
            let fv = f(pt.x, pt.y) * w;
            let row = &phi[q * n_modes..(q + 1) * n_modes];
            for (c, &ph) in coeffs.iter_mut().zip(row) {
                // Reference-measure weights: the affine Jacobian cancels
                // between the mass matrix and the load vector.
                *c += fv * ph;
            }
        }
    }
    field
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::{l2_error, linf_error};
    use ustencil_mesh::{generate_mesh, MeshClass};

    #[test]
    fn projection_reproduces_polynomials_exactly() {
        let mesh = generate_mesh(MeshClass::LowVariance, 100, 9);
        for p in 1..=3usize {
            let f = move |x: f64, y: f64| {
                // Total degree p polynomial.
                match p {
                    1 => 1.0 + 2.0 * x - y,
                    2 => 1.0 + x * y - y * y + x,
                    _ => x * x * x - 2.0 * x * y * y + y + 0.5,
                }
            };
            let field = project_l2(&mesh, p, f, 0);
            let err = linf_error(&mesh, &field, f, 4);
            assert!(err < 1e-11, "p={p} err={err}");
        }
    }

    #[test]
    fn projection_error_decreases_with_degree() {
        let mesh = generate_mesh(MeshClass::StructuredPattern, 200, 0);
        let f = |x: f64, y: f64| {
            (2.0 * std::f64::consts::PI * x).sin() * (2.0 * std::f64::consts::PI * y).cos()
        };
        let e1 = l2_error(&mesh, &project_l2(&mesh, 1, f, 4), f, 6);
        let e2 = l2_error(&mesh, &project_l2(&mesh, 2, f, 4), f, 6);
        let e3 = l2_error(&mesh, &project_l2(&mesh, 3, f, 4), f, 6);
        assert!(e2 < e1 / 5.0, "e1={e1} e2={e2}");
        assert!(e3 < e2 / 5.0, "e2={e2} e3={e3}");
    }

    #[test]
    fn projection_converges_at_order_p_plus_one() {
        let f = |x: f64, y: f64| {
            (2.0 * std::f64::consts::PI * x).sin() * (2.0 * std::f64::consts::PI * y).sin()
        };
        for p in 1..=2usize {
            let coarse = generate_mesh(MeshClass::StructuredPattern, 2 * 8 * 8, 0);
            let fine = generate_mesh(MeshClass::StructuredPattern, 2 * 16 * 16, 0);
            let ec = l2_error(&coarse, &project_l2(&coarse, p, f, 4), f, 6);
            let ef = l2_error(&fine, &project_l2(&fine, p, f, 4), f, 6);
            let rate = (ec / ef).log2();
            assert!(
                rate > p as f64 + 0.6,
                "p={p}: rate {rate} (ec={ec} ef={ef})"
            );
        }
    }
}
