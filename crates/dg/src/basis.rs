//! The orthonormal Dubiner modal basis on the reference triangle.
//!
//! Reference element: `{(u, v) : u >= 0, v >= 0, u + v <= 1}`. The basis is
//! the collapsed-coordinate Jacobi construction
//!
//! ```text
//! phi_ij(u, v) = N_ij * P_i(a) * ((1 - b)/2)^i * P_j^{(2i+1,0)}(b),
//! a = 2u/(1 - v) - 1,  b = 2v - 1,
//! ```
//!
//! which is a polynomial of total degree `i + j` and orthogonal over the
//! reference triangle. Normalization constants `N_ij` are computed once by
//! exact quadrature so that the basis is orthonormal; a monomial expansion of
//! every mode is also precomputed (exact interpolation of a known-degree
//! polynomial), providing analytic reference gradients for the dG solver.

use ustencil_quadrature::gauss::legendre;
use ustencil_quadrature::jacobi::jacobi;
use ustencil_quadrature::linalg::solve_dense;
use ustencil_quadrature::TriangleRule;

/// An orthonormal modal basis of total degree `p` on the reference triangle.
#[derive(Debug, Clone)]
pub struct DubinerBasis {
    p: usize,
    /// Mode index pairs `(i, j)` in storage order.
    modes: Vec<(usize, usize)>,
    /// Normalization constants making each mode unit-norm.
    norms: Vec<f64>,
    /// Monomial expansion of each mode over `u^a v^b` (same exponent order
    /// as `modes`), row-major `[mode][monomial]`.
    monomial: Vec<f64>,
    /// Exponents `(a, b)` of the monomial basis used by `monomial`.
    exponents: Vec<(usize, usize)>,
}

impl DubinerBasis {
    /// Builds the basis of total degree `p`.
    pub fn new(p: usize) -> Self {
        let mut modes = Vec::new();
        for i in 0..=p {
            for j in 0..=(p - i) {
                modes.push((i, j));
            }
        }
        let n = modes.len();

        // Normalize by exact quadrature of each mode's square.
        let rule = TriangleRule::with_strength(2 * p + 2);
        let mut norms = vec![1.0; n];
        for (m, &(i, j)) in modes.iter().enumerate() {
            let sq = rule.integrate_ref(|u, v| {
                let e = eval_raw(i, j, u, v);
                e * e
            });
            norms[m] = 1.0 / sq.sqrt();
        }

        // Monomial expansion: interpolate each mode on a unisolvent lattice.
        let mut exponents = Vec::with_capacity(n);
        for a in 0..=p {
            for b in 0..=(p - a) {
                exponents.push((a, b));
            }
        }
        // Warped interior lattice (strictly inside, avoids the collapsed
        // vertex) is unisolvent for total-degree polynomials.
        let mut nodes = Vec::with_capacity(n);
        let pf = p as f64;
        for a in 0..=p {
            for b in 0..=(p - a) {
                let u = (a as f64 + 1.0 / 3.0) / (pf + 1.0);
                let v = (b as f64 + 1.0 / 3.0) / (pf + 1.0);
                nodes.push((u, v));
            }
        }
        let mut monomial = vec![0.0; n * n];
        for (m, &(i, j)) in modes.iter().enumerate() {
            let mut vand = vec![0.0; n * n];
            let mut rhs = vec![0.0; n];
            for (r, &(u, v)) in nodes.iter().enumerate() {
                for (c, &(a, b)) in exponents.iter().enumerate() {
                    vand[r * n + c] = u.powi(a as i32) * v.powi(b as i32);
                }
                rhs[r] = norms[m] * eval_raw(i, j, u, v);
            }
            let coeffs =
                solve_dense(&mut vand, &mut rhs, n).expect("interpolation lattice is unisolvent");
            monomial[m * n..(m + 1) * n].copy_from_slice(&coeffs);
        }

        Self {
            p,
            modes,
            norms,
            monomial,
            exponents,
        }
    }

    /// The polynomial degree.
    #[inline]
    pub fn degree(&self) -> usize {
        self.p
    }

    /// Number of modes, `(p + 1)(p + 2)/2`.
    #[inline]
    pub fn n_modes(&self) -> usize {
        self.modes.len()
    }

    /// The `(i, j)` index pair of mode `m`.
    #[inline]
    pub fn mode_indices(&self, m: usize) -> (usize, usize) {
        self.modes[m]
    }

    /// Evaluates mode `m` at reference coordinates `(u, v)`.
    #[inline]
    pub fn eval_mode(&self, m: usize, u: f64, v: f64) -> f64 {
        let (i, j) = self.modes[m];
        self.norms[m] * eval_raw(i, j, u, v)
    }

    /// Evaluates all modes at `(u, v)` into `out` (length `n_modes`).
    pub fn eval_all(&self, u: f64, v: f64, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.n_modes());
        for (m, o) in out.iter_mut().enumerate() {
            *o = self.eval_mode(m, u, v);
        }
    }

    /// Evaluates the modal expansion `sum_m coeffs[m] * phi_m(u, v)`.
    pub fn eval_expansion(&self, coeffs: &[f64], u: f64, v: f64) -> f64 {
        debug_assert_eq!(coeffs.len(), self.n_modes());
        coeffs
            .iter()
            .enumerate()
            .map(|(m, &c)| c * self.eval_mode(m, u, v))
            .sum()
    }

    /// Reference gradient `(d/du, d/dv)` of mode `m` at `(u, v)`, from the
    /// exact monomial expansion.
    pub fn grad_mode(&self, m: usize, u: f64, v: f64) -> (f64, f64) {
        let n = self.n_modes();
        let coeffs = &self.monomial[m * n..(m + 1) * n];
        let mut du = 0.0;
        let mut dv = 0.0;
        for (c, &(a, b)) in coeffs.iter().zip(&self.exponents) {
            if *c == 0.0 {
                continue;
            }
            if a > 0 {
                du += c * a as f64 * u.powi(a as i32 - 1) * v.powi(b as i32);
            }
            if b > 0 {
                dv += c * b as f64 * u.powi(a as i32) * v.powi(b as i32 - 1);
            }
        }
        (du, dv)
    }

    /// The monomial coefficients of mode `m` over the exponent basis
    /// returned by [`Self::monomial_exponents`].
    pub fn monomial_coefficients(&self, m: usize) -> &[f64] {
        let n = self.n_modes();
        &self.monomial[m * n..(m + 1) * n]
    }

    /// Exponent pairs `(a, b)` of the monomial basis `u^a v^b`.
    pub fn monomial_exponents(&self) -> &[(usize, usize)] {
        &self.exponents
    }
}

/// Unnormalized Dubiner mode `(i, j)` at `(u, v)`.
#[inline]
fn eval_raw(i: usize, j: usize, u: f64, v: f64) -> f64 {
    let b = 2.0 * v - 1.0;
    let one_minus_v = 1.0 - v;
    // Collapsed coordinate; the (1-v)^i factor cancels the singularity, so
    // any finite value of `a` works at the apex when i > 0, and for i == 0
    // the Legendre factor is constant.
    let a = if one_minus_v.abs() < 1e-14 {
        -1.0
    } else {
        2.0 * u / one_minus_v - 1.0
    };
    let pa = legendre(i, a).0;
    let scale = one_minus_v.powi(i as i32); // ((1-b)/2)^i = (1-v)^i
    let pb = jacobi(j, (2 * i + 1) as u32, b);
    pa * scale * pb
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_count() {
        for p in 0..=4 {
            let basis = DubinerBasis::new(p);
            assert_eq!(basis.n_modes(), (p + 1) * (p + 2) / 2);
        }
    }

    #[test]
    fn orthonormality() {
        for p in 1..=3usize {
            let basis = DubinerBasis::new(p);
            let rule = TriangleRule::with_strength(2 * p + 2);
            let n = basis.n_modes();
            for m1 in 0..n {
                for m2 in 0..n {
                    let ip = rule.integrate_ref(|u, v| {
                        basis.eval_mode(m1, u, v) * basis.eval_mode(m2, u, v)
                    });
                    let want = if m1 == m2 { 1.0 } else { 0.0 };
                    assert!((ip - want).abs() < 1e-11, "p={p} <{m1},{m2}> = {ip}");
                }
            }
        }
    }

    #[test]
    fn first_mode_is_constant() {
        let basis = DubinerBasis::new(2);
        // phi_0 = 1/sqrt(area) = sqrt(2) on the unit triangle.
        let expected = 2f64.sqrt();
        for &(u, v) in &[(0.1, 0.1), (0.5, 0.25), (0.0, 0.0), (0.9, 0.05)] {
            assert!((basis.eval_mode(0, u, v) - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn monomial_expansion_matches_direct_evaluation() {
        for p in 1..=3usize {
            let basis = DubinerBasis::new(p);
            for m in 0..basis.n_modes() {
                let coeffs = basis.monomial_coefficients(m);
                for &(u, v) in &[(0.05f64, 0.05f64), (0.3, 0.4), (0.7, 0.2), (0.0, 0.95)] {
                    let via_monomials: f64 = coeffs
                        .iter()
                        .zip(basis.monomial_exponents())
                        .map(|(c, &(a, b))| c * u.powi(a as i32) * v.powi(b as i32))
                        .sum();
                    let direct = basis.eval_mode(m, u, v);
                    assert!(
                        (via_monomials - direct).abs() < 1e-9,
                        "p={p} m={m} at ({u},{v}): {via_monomials} vs {direct}"
                    );
                }
            }
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let basis = DubinerBasis::new(3);
        let h = 1e-6;
        for m in 0..basis.n_modes() {
            for &(u, v) in &[(0.2, 0.3), (0.5, 0.1), (0.1, 0.6)] {
                let (du, dv) = basis.grad_mode(m, u, v);
                let fd_u =
                    (basis.eval_mode(m, u + h, v) - basis.eval_mode(m, u - h, v)) / (2.0 * h);
                let fd_v =
                    (basis.eval_mode(m, u, v + h) - basis.eval_mode(m, u, v - h)) / (2.0 * h);
                assert!((du - fd_u).abs() < 1e-5, "m={m} du {du} vs {fd_u}");
                assert!((dv - fd_v).abs() < 1e-5, "m={m} dv {dv} vs {fd_v}");
            }
        }
    }

    #[test]
    fn apex_evaluation_is_finite() {
        let basis = DubinerBasis::new(3);
        for m in 0..basis.n_modes() {
            let val = basis.eval_mode(m, 0.0, 1.0);
            assert!(val.is_finite(), "mode {m} at apex: {val}");
        }
    }

    #[test]
    fn expansion_evaluation() {
        let basis = DubinerBasis::new(1);
        let coeffs = [1.0, 0.5, -0.25];
        let got = basis.eval_expansion(&coeffs, 0.3, 0.3);
        let want: f64 = (0..3)
            .map(|m| coeffs[m] * basis.eval_mode(m, 0.3, 0.3))
            .sum();
        assert_eq!(got, want);
    }
}
