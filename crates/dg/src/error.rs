//! Quadrature-based error norms for dG fields.

use crate::field::DgField;
use ustencil_mesh::TriMesh;
use ustencil_quadrature::TriangleRule;

/// L2 norm of `field - f` over the mesh.
///
/// `extra_strength` raises the quadrature strength beyond `2p` for
/// non-polynomial references.
pub fn l2_error<F: Fn(f64, f64) -> f64>(
    mesh: &TriMesh,
    field: &DgField,
    f: F,
    extra_strength: usize,
) -> f64 {
    let rule = TriangleRule::with_strength(2 * field.degree() + extra_strength);
    let mut acc = 0.0;
    for e in 0..mesh.n_triangles() {
        let tri = mesh.triangle(e);
        let jac = tri.jacobian().abs();
        for (&(u, v), &w) in rule.points().iter().zip(rule.weights()) {
            let p = tri.map_from_unit(u, v);
            let d = field.eval_ref(e, u, v) - f(p.x, p.y);
            acc += w * jac * d * d;
        }
    }
    acc.sqrt()
}

/// Maximum absolute error of `field - f` sampled at the quadrature points of
/// every element.
pub fn linf_error<F: Fn(f64, f64) -> f64>(
    mesh: &TriMesh,
    field: &DgField,
    f: F,
    extra_strength: usize,
) -> f64 {
    let rule = TriangleRule::with_strength(2 * field.degree() + extra_strength);
    let mut max: f64 = 0.0;
    for e in 0..mesh.n_triangles() {
        let tri = mesh.triangle(e);
        for &(u, v) in rule.points() {
            let p = tri.map_from_unit(u, v);
            let d = (field.eval_ref(e, u, v) - f(p.x, p.y)).abs();
            max = max.max(d);
        }
    }
    max
}

/// L2 norm of the field itself.
pub fn l2_norm(mesh: &TriMesh, field: &DgField) -> f64 {
    l2_error(mesh, field, |_, _| 0.0, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::project::project_l2;
    use ustencil_mesh::{generate_mesh, MeshClass};

    #[test]
    fn zero_field_error_is_function_norm() {
        let mesh = generate_mesh(MeshClass::StructuredPattern, 32, 0);
        let field = DgField::zeros(1, mesh.n_triangles());
        // ||1||_L2 over unit square = 1.
        let err = l2_error(&mesh, &field, |_, _| 1.0, 0);
        assert!((err - 1.0).abs() < 1e-12);
        assert!((linf_error(&mesh, &field, |_, _| 1.0, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exact_projection_has_tiny_error() {
        let mesh = generate_mesh(MeshClass::LowVariance, 64, 4);
        let f = |x: f64, y: f64| 2.0 * x - 3.0 * y + 1.0;
        let field = project_l2(&mesh, 1, f, 0);
        assert!(l2_error(&mesh, &field, f, 2) < 1e-12);
    }

    #[test]
    fn l2_norm_of_constant_field() {
        let mesh = generate_mesh(MeshClass::StructuredPattern, 32, 0);
        let field = project_l2(&mesh, 1, |_, _| 2.0, 0);
        assert!((l2_norm(&mesh, &field) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn linf_dominates_l2_on_unit_domain() {
        let mesh = generate_mesh(MeshClass::StructuredPattern, 128, 0);
        let f = |x: f64, y: f64| (x * y).sin();
        let field = project_l2(&mesh, 1, f, 4);
        let l2 = l2_error(&mesh, &field, f, 4);
        let li = linf_error(&mesh, &field, f, 4);
        assert!(li >= l2 / 2.0, "linf {li} vs l2 {l2}");
    }
}
