//! Quadrature over triangles via collapsed (Duffy) coordinates.

use crate::gauss::GaussLegendre;
use crate::jacobi::GaussJacobi;
use ustencil_geometry::Triangle;

/// A quadrature rule over the reference unit triangle
/// `{(u, v) : u >= 0, v >= 0, u + v <= 1}`.
///
/// Constructed as the tensor product of a Gauss–Legendre rule in the
/// collapsed direction and a Gauss–Jacobi (`alpha = 1`) rule that absorbs the
/// Duffy Jacobian `(1 - t)`, so a rule of strength `d` integrates every
/// polynomial of total degree `<= d` exactly with `(d/2 + 1)^2` points.
#[derive(Debug, Clone)]
pub struct TriangleRule {
    strength: usize,
    /// Reference coordinates `(u, v)` of each quadrature point.
    points: Vec<(f64, f64)>,
    /// Reference weights; sum to the reference area `1/2`.
    weights: Vec<f64>,
}

impl TriangleRule {
    /// Builds the smallest collapsed-coordinate rule exact for total degree
    /// `strength`.
    pub fn with_strength(strength: usize) -> Self {
        let gl = GaussLegendre::with_strength(strength);
        let gj = GaussJacobi::with_strength(strength, 1);
        let mut points = Vec::with_capacity(gl.len() * gj.len());
        let mut weights = Vec::with_capacity(gl.len() * gj.len());
        for (&xt, &wt) in gj.nodes().iter().zip(gj.weights()) {
            // t in [0, 1]; Jacobi weight (1 - x) already accounts for the
            // Duffy factor (1 - t) = (1 - x)/2.
            let t = 0.5 * (1.0 + xt);
            for (&xs, &ws) in gl.nodes().iter().zip(gl.weights()) {
                let s = 0.5 * (1.0 + xs);
                // u = s (1 - t), v = t maps the square onto the triangle.
                points.push((s * (1.0 - t), t));
                // d(u,v) = (1-t) ds dt; ds = dxs/2, dt = dxt/2, and the
                // (1-t) = (1-xt)/2 factor lives inside the Jacobi weight wt,
                // contributing an extra 1/2.
                weights.push(ws * wt * 0.125);
            }
        }
        Self {
            strength,
            points,
            weights,
        }
    }

    /// The total polynomial degree integrated exactly.
    #[inline]
    pub fn strength(&self) -> usize {
        self.strength
    }

    /// Number of quadrature points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the rule has no points (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Reference-triangle points `(u, v)`.
    #[inline]
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Reference weights (positive; sum to `1/2`).
    #[inline]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Integrates `f(u, v)` over the reference triangle.
    pub fn integrate_ref<F: FnMut(f64, f64) -> f64>(&self, mut f: F) -> f64 {
        self.points
            .iter()
            .zip(&self.weights)
            .map(|(&(u, v), &w)| w * f(u, v))
            .sum()
    }

    /// Integrates `f(x, y)` over an arbitrary physical triangle by mapping
    /// the reference rule through the element's affine map.
    pub fn integrate_physical<F: FnMut(f64, f64) -> f64>(&self, tri: &Triangle, mut f: F) -> f64 {
        let jac = tri.jacobian().abs();
        if jac == 0.0 {
            return 0.0;
        }
        let sum: f64 = self
            .points
            .iter()
            .zip(&self.weights)
            .map(|(&(u, v), &w)| {
                let p = tri.map_from_unit(u, v);
                w * f(p.x, p.y)
            })
            .sum();
        // Reference weights carry the reference measure; the affine map
        // scales area by |J| (reference triangle area embedded in weights).
        sum * jac
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ustencil_geometry::Point2;

    /// Exact integral of `u^i v^j` over the reference unit triangle:
    /// `i! j! / (i + j + 2)!`.
    fn exact_monomial(i: u32, j: u32) -> f64 {
        fn fact(n: u32) -> f64 {
            (1..=n).map(|k| k as f64).product()
        }
        fact(i) * fact(j) / fact(i + j + 2)
    }

    #[test]
    fn weights_sum_to_reference_area() {
        for d in 0..12 {
            let rule = TriangleRule::with_strength(d);
            let s: f64 = rule.weights().iter().sum();
            assert!((s - 0.5).abs() < 1e-13, "strength {d}: {s}");
        }
    }

    #[test]
    fn points_inside_reference_triangle() {
        let rule = TriangleRule::with_strength(9);
        for &(u, v) in rule.points() {
            assert!(u >= 0.0 && v >= 0.0 && u + v <= 1.0 + 1e-14);
        }
    }

    #[test]
    fn exactness_on_monomials() {
        for d in 0..=10usize {
            let rule = TriangleRule::with_strength(d);
            for i in 0..=d as u32 {
                for j in 0..=(d as u32 - i) {
                    let got = rule.integrate_ref(|u, v| u.powi(i as i32) * v.powi(j as i32));
                    let want = exact_monomial(i, j);
                    assert!(
                        (got - want).abs() < 1e-14,
                        "d={d} i={i} j={j}: {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn physical_constant_integral_is_area() {
        let tri = Triangle::new(
            Point2::new(1.0, 1.0),
            Point2::new(4.0, 2.0),
            Point2::new(2.0, 5.0),
        );
        let rule = TriangleRule::with_strength(2);
        let got = rule.integrate_physical(&tri, |_, _| 1.0);
        assert!((got - tri.area()).abs() < 1e-13);
    }

    #[test]
    fn physical_linear_integral() {
        // Integral of x over the unit right triangle = 1/6.
        let tri = Triangle::new(
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(0.0, 1.0),
        );
        let rule = TriangleRule::with_strength(1);
        let got = rule.integrate_physical(&tri, |x, _| x);
        assert!((got - 1.0 / 6.0).abs() < 1e-14);
    }

    #[test]
    fn physical_polynomial_invariance_under_vertex_permutation() {
        let a = Point2::new(0.3, 0.1);
        let b = Point2::new(1.2, 0.4);
        let c = Point2::new(0.7, 1.5);
        let f = |x: f64, y: f64| 3.0 * x * x * y - 2.0 * y * y + x + 1.0;
        let rule = TriangleRule::with_strength(3);
        let i1 = rule.integrate_physical(&Triangle::new(a, b, c), f);
        let i2 = rule.integrate_physical(&Triangle::new(b, c, a), f);
        let i3 = rule.integrate_physical(&Triangle::new(c, a, b), f);
        let i4 = rule.integrate_physical(&Triangle::new(a, c, b), f); // flipped
        assert!((i1 - i2).abs() < 1e-13);
        assert!((i1 - i3).abs() < 1e-13);
        assert!((i1 - i4).abs() < 1e-13);
    }

    #[test]
    fn degenerate_triangle_integrates_to_zero() {
        let tri = Triangle::new(
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(2.0, 2.0),
        );
        let rule = TriangleRule::with_strength(4);
        assert_eq!(rule.integrate_physical(&tri, |x, y| x + y), 0.0);
    }

    #[test]
    fn point_count_matches_formula() {
        for d in [0usize, 1, 2, 5, 9] {
            let rule = TriangleRule::with_strength(d);
            let n = d / 2 + 1;
            assert_eq!(rule.len(), n * n);
        }
    }
}
