//! Minimal dense linear algebra: Gaussian elimination with partial pivoting.
//!
//! Used for the small, well-conditioned systems that arise when constructing
//! quadrature weights and SIAC kernel coefficients (dimension at most a few
//! dozen), so a dependency on a full linear-algebra crate is not warranted.

/// Solves the `n x n` system `A x = b` in place by Gaussian elimination with
/// partial pivoting.
///
/// `matrix` is row-major with `n * n` entries and is destroyed; `rhs` holds
/// `b` on entry and is destroyed. Returns the solution, or `None` when the
/// matrix is numerically singular.
pub fn solve_dense(matrix: &mut [f64], rhs: &mut [f64], n: usize) -> Option<Vec<f64>> {
    assert_eq!(matrix.len(), n * n, "matrix must be n x n");
    assert_eq!(rhs.len(), n, "rhs must have length n");

    for col in 0..n {
        // Partial pivot: largest magnitude in this column at or below the
        // diagonal.
        let mut pivot_row = col;
        let mut pivot_val = matrix[col * n + col].abs();
        for row in (col + 1)..n {
            let v = matrix[row * n + col].abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = row;
            }
        }
        if pivot_val < 1e-300 {
            return None;
        }
        if pivot_row != col {
            for k in 0..n {
                matrix.swap(col * n + k, pivot_row * n + k);
            }
            rhs.swap(col, pivot_row);
        }
        let inv = 1.0 / matrix[col * n + col];
        for row in (col + 1)..n {
            let factor = matrix[row * n + col] * inv;
            if factor == 0.0 {
                continue;
            }
            matrix[row * n + col] = 0.0;
            for k in (col + 1)..n {
                matrix[row * n + k] -= factor * matrix[col * n + k];
            }
            rhs[row] -= factor * rhs[col];
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = rhs[row];
        for k in (row + 1)..n {
            acc -= matrix[row * n + k] * x[k];
        }
        x[row] = acc / matrix[row * n + row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let mut a = vec![1.0, 0.0, 0.0, 1.0];
        let mut b = vec![3.0, -2.0];
        let x = solve_dense(&mut a, &mut b, 2).unwrap();
        assert_eq!(x, vec![3.0, -2.0]);
    }

    #[test]
    fn solves_known_system() {
        // [2 1; 1 3] x = [5; 10] => x = [1; 3].
        let mut a = vec![2.0, 1.0, 1.0, 3.0];
        let mut b = vec![5.0, 10.0];
        let x = solve_dense(&mut a, &mut b, 2).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-14);
        assert!((x[1] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn requires_pivoting() {
        // Zero diagonal head: fails without partial pivoting.
        let mut a = vec![0.0, 1.0, 1.0, 0.0];
        let mut b = vec![2.0, 7.0];
        let x = solve_dense(&mut a, &mut b, 2).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-14);
        assert!((x[1] - 2.0).abs() < 1e-14);
    }

    #[test]
    fn detects_singular() {
        let mut a = vec![1.0, 2.0, 2.0, 4.0];
        let mut b = vec![1.0, 2.0];
        assert!(solve_dense(&mut a, &mut b, 2).is_none());
    }

    #[test]
    fn residual_small_on_random_like_system() {
        // Deterministic pseudo-random fill; checks A x = b residual.
        let n = 12;
        let mut a = vec![0.0; n * n];
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        for v in a.iter_mut() {
            *v = next();
        }
        for i in 0..n {
            a[i * n + i] += 4.0; // diagonally dominant => well conditioned
        }
        let b: Vec<f64> = (0..n).map(|i| i as f64 - 3.0).collect();
        let mut a_copy = a.clone();
        let mut b_copy = b.clone();
        let x = solve_dense(&mut a_copy, &mut b_copy, n).unwrap();
        for i in 0..n {
            let mut r = -b[i];
            for j in 0..n {
                r += a[i * n + j] * x[j];
            }
            assert!(r.abs() < 1e-11, "residual row {i}: {r}");
        }
    }
}
