//! Gauss–Legendre quadrature on `[-1, 1]`.

/// An `n`-point Gauss–Legendre rule, exact for polynomials of degree
/// `2n - 1` on `[-1, 1]`.
///
/// Nodes are the roots of the Legendre polynomial `P_n`, found by Newton
/// iteration from the Chebyshev-based initial guess; weights follow from
/// `w_i = 2 / ((1 - x_i^2) P_n'(x_i)^2)`. Rules up to several hundred points
/// converge in a handful of iterations.
#[derive(Debug, Clone)]
pub struct GaussLegendre {
    nodes: Vec<f64>,
    weights: Vec<f64>,
}

/// Evaluates the Legendre polynomial `P_n` and its derivative at `x` via the
/// three-term recurrence. Returns `(P_n(x), P_n'(x))`.
pub fn legendre(n: usize, x: f64) -> (f64, f64) {
    if n == 0 {
        return (1.0, 0.0);
    }
    let mut p_prev = 1.0; // P_0
    let mut p = x; // P_1
    for k in 2..=n {
        let kf = k as f64;
        let p_next = ((2.0 * kf - 1.0) * x * p - (kf - 1.0) * p_prev) / kf;
        p_prev = p;
        p = p_next;
    }
    // P_n'(x) = n (x P_n - P_{n-1}) / (x^2 - 1); use the recurrence-safe form
    // at the endpoints (never hit by interior Gauss nodes).
    let dp = if (x * x - 1.0).abs() < 1e-300 {
        let nf = n as f64;
        x.signum().powi(n as i32 + 1) * nf * (nf + 1.0) / 2.0
    } else {
        (n as f64) * (x * p - p_prev) / (x * x - 1.0)
    };
    (p, dp)
}

impl GaussLegendre {
    /// Builds the `n`-point rule. `n` must be at least 1.
    ///
    /// ```
    /// use ustencil_quadrature::GaussLegendre;
    /// let rule = GaussLegendre::new(3);
    /// // Exact for degree 5: integral of x^4 over [-1, 1] is 2/5.
    /// let got = rule.integrate(|x| x.powi(4));
    /// assert!((got - 0.4).abs() < 1e-14);
    /// ```
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "Gauss-Legendre rule needs at least one point");
        let mut nodes = vec![0.0; n];
        let mut weights = vec![0.0; n];
        // Roots are symmetric; solve for the non-negative half.
        let m = n.div_ceil(2);
        for i in 0..m {
            // Chebyshev initial guess for the i-th root (descending order).
            let mut x = (std::f64::consts::PI * (i as f64 + 0.75) / (n as f64 + 0.5)).cos();
            for _ in 0..100 {
                let (p, d) = legendre(n, x);
                let dx = p / d;
                x -= dx;
                if dx.abs() < 1e-15 {
                    break;
                }
            }
            // Refresh the derivative at the converged node for the weight.
            let (_, dp) = legendre(n, x);
            let w = 2.0 / ((1.0 - x * x) * dp * dp);
            nodes[i] = -x;
            nodes[n - 1 - i] = x;
            weights[i] = w;
            weights[n - 1 - i] = w;
        }
        if n % 2 == 1 {
            // The middle node of odd rules is exactly zero.
            nodes[n / 2] = 0.0;
            let (_, d) = legendre(n, 0.0);
            weights[n / 2] = 2.0 / (d * d);
        }
        Self { nodes, weights }
    }

    /// Smallest rule exact for polynomials of the given degree.
    pub fn with_strength(degree: usize) -> Self {
        Self::new(degree / 2 + 1)
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the rule has no points (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Nodes on `[-1, 1]`, ascending.
    #[inline]
    pub fn nodes(&self) -> &[f64] {
        &self.nodes
    }

    /// Weights (positive, summing to 2).
    #[inline]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Integrates `f` over `[-1, 1]`.
    pub fn integrate<F: FnMut(f64) -> f64>(&self, mut f: F) -> f64 {
        self.nodes
            .iter()
            .zip(&self.weights)
            .map(|(&x, &w)| w * f(x))
            .sum()
    }

    /// Integrates `f` over `[a, b]` by affine change of variables.
    pub fn integrate_on<F: FnMut(f64) -> f64>(&self, a: f64, b: f64, mut f: F) -> f64 {
        let mid = 0.5 * (a + b);
        let half = 0.5 * (b - a);
        half * self.integrate(|x| f(mid + half * x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monomial_integral(k: u32) -> f64 {
        // Integral of x^k over [-1, 1].
        if k % 2 == 1 {
            0.0
        } else {
            2.0 / (k as f64 + 1.0)
        }
    }

    #[test]
    fn exactness_up_to_2n_minus_1() {
        for n in 1..=12usize {
            let rule = GaussLegendre::new(n);
            for k in 0..=(2 * n - 1) as u32 {
                let got = rule.integrate(|x| x.powi(k as i32));
                let want = monomial_integral(k);
                assert!((got - want).abs() < 1e-13, "n={n} k={k}: {got} vs {want}");
            }
        }
    }

    #[test]
    fn degree_2n_is_not_exact() {
        // Sanity check that the exactness bound is tight.
        let rule = GaussLegendre::new(3);
        let got = rule.integrate(|x| x.powi(6));
        assert!((got - monomial_integral(6)).abs() > 1e-6);
    }

    #[test]
    fn weights_positive_and_sum_to_two() {
        for n in [1, 2, 5, 17, 50, 101] {
            let rule = GaussLegendre::new(n);
            assert!(rule.weights().iter().all(|&w| w > 0.0));
            let s: f64 = rule.weights().iter().sum();
            assert!((s - 2.0).abs() < 1e-12, "n={n}: {s}");
        }
    }

    #[test]
    fn nodes_sorted_symmetric_in_open_interval() {
        for n in [2usize, 7, 20, 51] {
            let rule = GaussLegendre::new(n);
            let x = rule.nodes();
            assert!(x.windows(2).all(|w| w[0] < w[1]));
            assert!(x.iter().all(|&v| v > -1.0 && v < 1.0));
            for i in 0..n {
                assert!((x[i] + x[n - 1 - i]).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn interval_mapping() {
        let rule = GaussLegendre::new(6);
        // Integral of x^3 over [0, 2] = 4.
        let got = rule.integrate_on(0.0, 2.0, |x| x * x * x);
        assert!((got - 4.0).abs() < 1e-12);
        // Integral of sin over [0, pi] = 2 (approximate, smooth integrand).
        let got = rule.integrate_on(0.0, std::f64::consts::PI, f64::sin);
        assert!((got - 2.0).abs() < 1e-9);
    }

    #[test]
    fn with_strength_covers_degree() {
        for d in 0..20usize {
            let rule = GaussLegendre::with_strength(d);
            assert!(2 * rule.len() > d);
            let got = rule.integrate(|x| x.powi(d as i32));
            assert!((got - monomial_integral(d as u32)).abs() < 1e-12);
        }
    }

    #[test]
    fn legendre_known_values() {
        // P_2(x) = (3x^2 - 1) / 2.
        let (p, dp) = legendre(2, 0.5);
        assert!((p - (-0.125)).abs() < 1e-15);
        assert!((dp - 1.5).abs() < 1e-15);
        // P_n(1) = 1 for all n.
        for n in 0..10 {
            let (p, _) = legendre(n, 1.0);
            assert!((p - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn zero_points_panics() {
        let _ = GaussLegendre::new(0);
    }
}
