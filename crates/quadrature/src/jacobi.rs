//! Gauss–Jacobi quadrature with weight `(1 - x)^alpha` on `[-1, 1]`.
//!
//! The collapsed-coordinate (Duffy) map from the square to the triangle
//! introduces a `(1 - x)` Jacobian factor; absorbing it into a Gauss–Jacobi
//! rule with `alpha = 1` keeps triangle rules exact with the minimum point
//! count. Only integer `alpha >= 0` (and `beta = 0`) is supported — exactly
//! what the triangle construction needs.

use crate::gauss::GaussLegendre;

/// An `n`-point Gauss–Jacobi rule for `∫ (1-x)^alpha f(x) dx` on `[-1, 1]`,
/// exact when `f` is a polynomial of degree at most `2n - 1`.
#[derive(Debug, Clone)]
pub struct GaussJacobi {
    alpha: u32,
    nodes: Vec<f64>,
    weights: Vec<f64>,
}

/// Evaluates the Jacobi polynomial `P_n^{(alpha, 0)}` at `x` by the
/// three-term recurrence.
pub fn jacobi(n: usize, alpha: u32, x: f64) -> f64 {
    let a = alpha as f64;
    let b = 0.0f64;
    if n == 0 {
        return 1.0;
    }
    let mut p_prev = 1.0;
    let mut p = (a + 1.0) + (a + b + 2.0) * (x - 1.0) / 2.0;
    for k in 2..=n {
        let kf = k as f64;
        let c1 = 2.0 * kf * (kf + a + b) * (2.0 * kf + a + b - 2.0);
        let c2 = (2.0 * kf + a + b - 1.0)
            * ((2.0 * kf + a + b) * (2.0 * kf + a + b - 2.0) * x + a * a - b * b);
        let c3 = 2.0 * (kf + a - 1.0) * (kf + b - 1.0) * (2.0 * kf + a + b);
        let p_next = (c2 * p - c3 * p_prev) / c1;
        p_prev = p;
        p = p_next;
    }
    p
}

/// Finds all `n` roots of `P_n^{(alpha, 0)}` in `(-1, 1)` by interlacing
/// bisection: the roots of `P_k` strictly interlace those of `P_{k-1}`
/// augmented with the interval endpoints.
fn jacobi_roots(n: usize, alpha: u32) -> Vec<f64> {
    let mut roots: Vec<f64> = Vec::with_capacity(n);
    for k in 1..=n {
        let mut brackets = Vec::with_capacity(k + 1);
        brackets.push(-1.0);
        brackets.extend_from_slice(&roots);
        brackets.push(1.0);
        let mut next = Vec::with_capacity(k);
        for w in brackets.windows(2) {
            let (mut lo, mut hi) = (w[0], w[1]);
            let flo = jacobi(k, alpha, lo);
            // Bisection: the sign of P_k alternates between consecutive
            // brackets because exactly one root lies in each interval.
            for _ in 0..200 {
                let mid = 0.5 * (lo + hi);
                let fm = jacobi(k, alpha, mid);
                if (fm > 0.0) == (flo > 0.0) {
                    lo = mid;
                } else {
                    hi = mid;
                }
                if hi - lo < 1e-16 {
                    break;
                }
            }
            next.push(0.5 * (lo + hi));
        }
        roots = next;
    }
    roots
}

impl GaussJacobi {
    /// Builds the `n`-point rule for weight `(1 - x)^alpha`.
    ///
    /// Weights are recovered by requiring exactness on the Legendre basis
    /// `P_0 .. P_{n-1}` (a well-conditioned dense solve for the small `n`
    /// used in practice).
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn new(n: usize, alpha: u32) -> Self {
        assert!(n >= 1, "Gauss-Jacobi rule needs at least one point");
        let nodes = jacobi_roots(n, alpha);

        // Moments of the Legendre basis against the Jacobi weight, computed
        // exactly with a Gauss-Legendre rule of sufficient strength.
        let aux = GaussLegendre::with_strength(n - 1 + alpha as usize);
        let mut rhs = vec![0.0; n];
        for (k, r) in rhs.iter_mut().enumerate() {
            *r = aux.integrate(|x| (1.0 - x).powi(alpha as i32) * crate::gauss::legendre(k, x).0);
        }
        let mut matrix = vec![0.0; n * n];
        for k in 0..n {
            for (i, &x) in nodes.iter().enumerate() {
                matrix[k * n + i] = crate::gauss::legendre(k, x).0;
            }
        }
        let weights = crate::linalg::solve_dense(&mut matrix, &mut rhs, n)
            .expect("Gauss-Jacobi weight system is nonsingular");

        Self {
            alpha,
            nodes,
            weights,
        }
    }

    /// Smallest rule exact for polynomial factors of the given degree.
    pub fn with_strength(degree: usize, alpha: u32) -> Self {
        Self::new(degree / 2 + 1, alpha)
    }

    /// The weight exponent `alpha`.
    #[inline]
    pub fn alpha(&self) -> u32 {
        self.alpha
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the rule has no points (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Nodes on `(-1, 1)`, ascending.
    #[inline]
    pub fn nodes(&self) -> &[f64] {
        &self.nodes
    }

    /// Weights (positive; sum to `∫ (1-x)^alpha dx = 2^{alpha+1}/(alpha+1)`).
    #[inline]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Approximates `∫ (1-x)^alpha f(x) dx` over `[-1, 1]`; exact for
    /// polynomial `f` of degree `<= 2n - 1`.
    pub fn integrate<F: FnMut(f64) -> f64>(&self, mut f: F) -> f64 {
        self.nodes
            .iter()
            .zip(&self.weights)
            .map(|(&x, &w)| w * f(x))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference: integral of (1-x)^alpha x^k over [-1,1] by high-order
    /// Gauss-Legendre (exact for polynomials).
    fn reference(alpha: u32, k: u32) -> f64 {
        GaussLegendre::with_strength((alpha + k) as usize)
            .integrate(|x| (1.0 - x).powi(alpha as i32) * x.powi(k as i32))
    }

    #[test]
    fn alpha_zero_matches_gauss_legendre() {
        let gj = GaussJacobi::new(5, 0);
        let gl = GaussLegendre::new(5);
        for (a, b) in gj.nodes().iter().zip(gl.nodes()) {
            assert!((a - b).abs() < 1e-12);
        }
        for (a, b) in gj.weights().iter().zip(gl.weights()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn exactness_alpha_one() {
        for n in 1..=10usize {
            let rule = GaussJacobi::new(n, 1);
            for k in 0..=(2 * n - 1) as u32 {
                let got = rule.integrate(|x| x.powi(k as i32));
                let want = reference(1, k);
                assert!((got - want).abs() < 1e-12, "n={n} k={k}: {got} vs {want}");
            }
        }
    }

    #[test]
    fn exactness_alpha_two() {
        let rule = GaussJacobi::new(6, 2);
        for k in 0..=11u32 {
            let got = rule.integrate(|x| x.powi(k as i32));
            assert!((got - reference(2, k)).abs() < 1e-12);
        }
    }

    #[test]
    fn weights_positive_sum_correct() {
        for alpha in 0..=2u32 {
            for n in [1usize, 3, 8] {
                let rule = GaussJacobi::new(n, alpha);
                assert!(rule.weights().iter().all(|&w| w > 0.0));
                let s: f64 = rule.weights().iter().sum();
                let want = 2f64.powi(alpha as i32 + 1) / (alpha as f64 + 1.0);
                assert!((s - want).abs() < 1e-12, "alpha={alpha} n={n}");
            }
        }
    }

    #[test]
    fn nodes_interior_and_sorted() {
        let rule = GaussJacobi::new(9, 1);
        let x = rule.nodes();
        assert!(x.windows(2).all(|w| w[0] < w[1]));
        assert!(x.iter().all(|&v| v > -1.0 && v < 1.0));
    }

    #[test]
    fn jacobi_polynomial_known_value() {
        // P_1^{(1,0)}(x) = 2 + 3(x-1)/2 = (3x + 1)/2.
        for &x in &[-0.7, 0.0, 0.3, 0.9] {
            assert!((jacobi(1, 1, x) - (3.0 * x + 1.0) / 2.0).abs() < 1e-14);
        }
    }
}
