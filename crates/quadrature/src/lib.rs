//! Quadrature rules for exact integration of polynomial integrands.
//!
//! The SIAC post-processor integrates products of B-spline kernel pieces and
//! dG element polynomials over triangular sub-regions (Eq. 2 of the paper).
//! On each sub-region the integrand is a polynomial of known total degree, so
//! the integral is *exact* when evaluated with a rule of sufficient strength.
//! This crate provides:
//!
//! * [`GaussLegendre`] — `n`-point Gauss–Legendre rules on `[-1, 1]`, exact
//!   for polynomials of degree `2n - 1`, computed by Newton iteration on the
//!   Legendre polynomials,
//! * [`GaussJacobi`] — Gauss–Jacobi rules with weight `(1 - x)^alpha`, used to
//!   absorb the collapsed-coordinate Jacobian on triangles,
//! * [`TriangleRule`] — rules over the reference unit triangle built from
//!   collapsed (Duffy) coordinates, exact for a requested total degree, with
//!   mapping to arbitrary physical triangles.

#![deny(missing_docs)]

pub mod gauss;
pub mod jacobi;
pub mod linalg;
pub mod triangle;

pub use gauss::GaussLegendre;
pub use jacobi::GaussJacobi;
pub use triangle::TriangleRule;
